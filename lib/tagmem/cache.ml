let line_size = 64
let line_shift = 6

type level = {
  lines : int array; (* line address or -1 *)
  dirty : Bytes.t;
  mask : int;
}

type stats = {
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable bus_reads : int;
  mutable bus_writes : int;
  mutable accesses : int;
}

type t = { l1 : level; l2 : level; st : stats }

let mk_level kib =
  let n = kib * 1024 / line_size in
  assert (n land (n - 1) = 0);
  { lines = Array.make n (-1); dirty = Bytes.make n '\000'; mask = n - 1 }

let create ?(l1_kib = 4) ?(l2_kib = 64) () =
  {
    l1 = mk_level l1_kib;
    l2 = mk_level l2_kib;
    st = { l1_hits = 0; l2_hits = 0; bus_reads = 0; bus_writes = 0; accesses = 0 };
  }

let l1_latency = 2
let l2_latency = 14
let dram_latency = 120

let slot lv line = line land lv.mask
let is_dirty lv s = Bytes.get lv.dirty s <> '\000'
let set_dirty lv s v = Bytes.set lv.dirty s (if v then '\001' else '\000')

(* Install [line] in [lv]; if a dirty line is evicted from L2, that is a
   bus writeback. L1 evictions fall back into L2 silently (inclusive
   model approximation). *)
let install st lv line ~l2 ~write =
  let s = slot lv line in
  if l2 && lv.lines.(s) >= 0 && lv.lines.(s) <> line && is_dirty lv s then
    st.bus_writes <- st.bus_writes + 1;
  lv.lines.(s) <- line;
  set_dirty lv s write

let access_gen t ~addr ~write ~miss_latency =
  let st = t.st in
  st.accesses <- st.accesses + 1;
  let line = addr lsr line_shift in
  let s1 = slot t.l1 line in
  if t.l1.lines.(s1) = line then begin
    if write then set_dirty t.l1 s1 true;
    st.l1_hits <- st.l1_hits + 1;
    l1_latency
  end
  else begin
    let s2 = slot t.l2 line in
    if t.l2.lines.(s2) = line then begin
      if write then set_dirty t.l2 s2 true;
      st.l2_hits <- st.l2_hits + 1;
      install st t.l1 line ~l2:false ~write;
      l2_latency
    end
    else begin
      st.bus_reads <- st.bus_reads + 1;
      install st t.l2 line ~l2:true ~write;
      install st t.l1 line ~l2:false ~write;
      miss_latency
    end
  end

let access t ~addr ~write = access_gen t ~addr ~write ~miss_latency:dram_latency

let access_stream t ~addr ~write =
  access_gen t ~addr ~write ~miss_latency:(dram_latency / 2)

(* Batched line runs: charge [count] back-to-back accesses to addresses
   inside ONE line in a single call, with stats and final cache state
   identical to [count] individual calls. Used by the word-scan sweep
   kernel, whose cost-model contract is exact equivalence with the old
   per-granule loop.

   For the allocating variants ([access]/[access_stream]) the first
   access installs the line in L1, so the remaining [count - 1] are
   guaranteed L1 hits. *)
let access_stream_run t ~addr ~write ~count =
  assert (count >= 1 && (addr + ((count - 1) * 16)) lsr line_shift = addr lsr line_shift);
  let first = access_stream t ~addr ~write in
  let st = t.st in
  st.accesses <- st.accesses + (count - 1);
  st.l1_hits <- st.l1_hits + (count - 1);
  first + ((count - 1) * l1_latency)

let access_nt t ~addr ~write =
  let st = t.st in
  st.accesses <- st.accesses + 1;
  let line = addr lsr line_shift in
  let s1 = slot t.l1 line in
  if t.l1.lines.(s1) = line then begin
    if write then set_dirty t.l1 s1 true;
    st.l1_hits <- st.l1_hits + 1;
    l1_latency
  end
  else begin
    let s2 = slot t.l2 line in
    if t.l2.lines.(s2) = line then begin
      if write then set_dirty t.l2 s2 true;
      st.l2_hits <- st.l2_hits + 1;
      l2_latency
    end
    else begin
      st.bus_reads <- st.bus_reads + 1;
      if write then st.bus_writes <- st.bus_writes + 1;
      dram_latency
    end
  end

(* Non-temporal accesses never install, so every access of the run hits
   whatever level the first one found (or misses to DRAM each time —
   exactly what [count] individual [access_nt] calls would do). *)
let access_nt_run t ~addr ~write ~count =
  assert (count >= 1 && (addr + ((count - 1) * 16)) lsr line_shift = addr lsr line_shift);
  let first = access_nt t ~addr ~write in
  let st = t.st in
  let rest = count - 1 in
  st.accesses <- st.accesses + rest;
  let line = addr lsr line_shift in
  if t.l1.lines.(slot t.l1 line) = line then begin
    st.l1_hits <- st.l1_hits + rest;
    first + (rest * l1_latency)
  end
  else if t.l2.lines.(slot t.l2 line) = line then begin
    st.l2_hits <- st.l2_hits + rest;
    first + (rest * l2_latency)
  end
  else begin
    st.bus_reads <- st.bus_reads + rest;
    if write then st.bus_writes <- st.bus_writes + rest;
    first + (rest * dram_latency)
  end

let stats t = t.st

let reset_stats t =
  let st = t.st in
  st.l1_hits <- 0;
  st.l2_hits <- 0;
  st.bus_reads <- 0;
  st.bus_writes <- 0;
  st.accesses <- 0

let flush t =
  let drop lv ~count =
    Array.iteri
      (fun s line ->
        if line >= 0 then begin
          if count && is_dirty lv s then t.st.bus_writes <- t.st.bus_writes + 1;
          lv.lines.(s) <- -1;
          set_dirty lv s false
        end)
      lv.lines
  in
  drop t.l1 ~count:false;
  drop t.l2 ~count:true

let bus_total st = st.bus_reads + st.bus_writes
