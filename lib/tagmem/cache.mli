(** Per-core cache hierarchy and bus-traffic model.

    Two levels, write-back write-allocate, 64-byte lines, physically
    indexed: a small L1 and a larger private L2 (Morello's Neoverse-N1-
    derived cores have private L1/L2; the shared system cache is folded
    into the DRAM latency). Every L2 miss or dirty-line writeback is one
    {e bus transaction} — the proxy for DRAM traffic used by the paper's
    figures 4 and 6.

    Cross-core coherence invalidations are not modelled; the paper's
    workloads pin the revoker and the application to distinct cores with
    independent caches, which is exactly the behaviour this model gives
    (see DESIGN.md and §7.5 of the paper). *)

type t

type stats = {
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable bus_reads : int; (* line fills from DRAM *)
  mutable bus_writes : int; (* dirty writebacks to DRAM *)
  mutable accesses : int;
}

val line_size : int

val create : ?l1_kib:int -> ?l2_kib:int -> unit -> t
(** Defaults: 4 KiB L1, 64 KiB L2 (direct-mapped) — Morello's 64 KiB /
    1 MiB scaled by 1/16, splitting the difference with the repository's
    1/64 heap scaling so that heap:cache ratios (which drive the DRAM
    traffic figures) stay in a realistic regime. *)

val access : t -> addr:int -> write:bool -> int
(** Simulate one access; returns its latency in cycles and updates the
    statistics. Accesses that straddle a line boundary are charged as the
    first line only (negligible for the granule-aligned traffic the
    simulator generates). *)

val access_nt : t -> addr:int -> write:bool -> int
(** Non-temporal access: bypasses allocation (no line fill), still counts
    bus traffic on miss. Used by the §5.6 "non-temporal sweep" ablation. *)

val access_stream : t -> addr:int -> write:bool -> int
(** Streaming access: same cache behaviour as {!access} but charged at a
    quarter of the DRAM latency on miss, modelling the memory-level
    parallelism of a sequential hardware-prefetched scan — the revoker's
    page sweep loop. Bus traffic is counted identically. *)

val access_stream_run : t -> addr:int -> write:bool -> count:int -> int
(** [access_stream_run t ~addr ~write ~count] charges [count]
    back-to-back granule accesses within the single line containing
    [addr], starting at [addr]: identical latency total, statistics and
    final cache state to [count] individual {!access_stream} calls (the
    first access installs the line; the rest are guaranteed L1 hits).
    The word-scan sweep kernel's batched cost model. *)

val access_nt_run : t -> addr:int -> write:bool -> count:int -> int
(** Same batching for {!access_nt}: non-temporal accesses never install
    a line, so each access of the run repeats the first one's outcome —
    including one bus transaction {e per access} on miss, exactly as the
    per-granule loop would be charged. *)

val stats : t -> stats
val reset_stats : t -> unit
val flush : t -> unit
(** Write back and drop every line (counts writebacks for dirty lines). *)

val bus_total : stats -> int
