module Capability = Cheri.Capability

let granule = 16

type t = {
  size : int;
  data : Bytes.t;
  tags : Bytes.t; (* one bit per granule *)
  shadow : Capability.t array; (* valid iff corresponding tag is set *)
}

let create ~size =
  let size = (size + granule - 1) / granule * granule in
  let ngran = size / granule in
  {
    size;
    data = Bytes.make size '\000';
    tags = Bytes.make ((ngran + 7) / 8) '\000';
    shadow = Array.make ngran Capability.null;
  }

let size m = m.size

let check m a w =
  if a < 0 || a + w > m.size then
    invalid_arg (Printf.sprintf "Mem: access [%#x,+%d) outside [0,%#x)" a w m.size)

let gidx a = a / granule

let read_tag m a =
  check m a 1;
  let g = gidx a in
  Char.code (Bytes.get m.tags (g lsr 3)) land (1 lsl (g land 7)) <> 0

let set_tag_bit m g v =
  let byte = Char.code (Bytes.get m.tags (g lsr 3)) in
  let bit = 1 lsl (g land 7) in
  let byte' = if v then byte lor bit else byte land lnot bit in
  Bytes.set m.tags (g lsr 3) (Char.chr byte')

let clear_tag m a =
  check m a 1;
  set_tag_bit m (gidx a) false

(* Clear tags of every granule overlapping [a, a+w). *)
let clear_tags_range m a w =
  let g0 = gidx a and g1 = gidx (a + w - 1) in
  for g = g0 to g1 do
    set_tag_bit m g false
  done

let read_u8 m a =
  check m a 1;
  Char.code (Bytes.get m.data a)

let write_u8 m a v =
  check m a 1;
  Bytes.set m.data a (Char.chr (v land 0xff));
  clear_tags_range m a 1

let read_u64 m a =
  check m a 8;
  Bytes.get_int64_le m.data a

let write_u64 m a v =
  check m a 8;
  Bytes.set_int64_le m.data a v;
  clear_tags_range m a 8

let aligned a = a land (granule - 1) = 0

let read_cap m a =
  check m a granule;
  if not (aligned a) then invalid_arg "Mem.read_cap: unaligned";
  if read_tag m a then m.shadow.(gidx a)
  else
    let addr = Int64.to_int (Bytes.get_int64_le m.data a) in
    Capability.set_addr Capability.null addr

let write_cap m a c =
  check m a granule;
  if not (aligned a) then invalid_arg "Mem.write_cap: unaligned";
  let g = gidx a in
  Bytes.set_int64_le m.data a (Int64.of_int (Capability.addr c));
  Bytes.set_int64_le m.data (a + 8) 0L;
  if Capability.tag c then begin
    m.shadow.(g) <- c;
    set_tag_bit m g true
  end
  else set_tag_bit m g false

let iter_granules m ~lo ~hi f =
  let lo = max 0 lo and hi = min m.size hi in
  let a = ref (lo land lnot (granule - 1)) in
  if !a < lo then a := !a + granule;
  while !a + granule <= hi do
    f !a (read_tag m !a);
    a := !a + granule
  done

let count_tags m ~lo ~hi =
  let n = ref 0 in
  iter_granules m ~lo ~hi (fun _ tagged -> if tagged then incr n);
  !n

(* Copy [len] bytes from [src] to [dst], preserving tags and shadow
   capabilities. Both ranges must be granule-aligned, as must [len];
   copy-on-write duplicates whole frames, which satisfies this. *)
let copy_range m ~src ~dst ~len =
  check m src len;
  check m dst len;
  if not (aligned src && aligned dst && len land (granule - 1) = 0) then
    invalid_arg "Mem.copy_range: unaligned";
  Bytes.blit m.data src m.data dst len;
  let g0 = gidx src and gd = gidx dst in
  for i = 0 to (len / granule) - 1 do
    let t = read_tag m ((g0 + i) * granule) in
    set_tag_bit m (gd + i) t;
    m.shadow.(gd + i) <- (if t then m.shadow.(g0 + i) else Capability.null)
  done

let fill m ~lo ~hi v =
  check m lo 0;
  check m hi 0;
  if hi > lo then begin
    Bytes.fill m.data lo (hi - lo) (Char.chr (v land 0xff));
    clear_tags_range m lo (hi - lo)
  end
