module Capability = Cheri.Capability

let granule = 16

type t = {
  size : int;
  data : Bytes.t;
  tags : Bytes.t; (* one bit per granule *)
  shadow : Capability.t array; (* valid iff corresponding tag is set *)
}

(* One tag bit per granule, packed little-endian: granule [g] is bit
   [g land 7] of byte [g lsr 3], so [Bytes.get_int64_le tags (8*w)]
   yields a 64-granule word whose bit [g land 63] is granule [64*w + g].
   The array is sized to a whole number of 64-bit words so the word-scan
   kernels can always load full words. *)
let create ~size =
  let size = (size + granule - 1) / granule * granule in
  let ngran = size / granule in
  {
    size;
    data = Bytes.make size '\000';
    tags = Bytes.make ((ngran + 63) / 64 * 8) '\000';
    shadow = Array.make ngran Capability.null;
  }

let size m = m.size

let check m a w =
  if a < 0 || a + w > m.size then
    invalid_arg (Printf.sprintf "Mem: access [%#x,+%d) outside [0,%#x)" a w m.size)

let gidx a = a / granule

(* Branch-free SWAR popcount; shared by the word-scan kernels and
   Revmap's painted-bit accounting. *)
let popcount64 n =
  let open Int64 in
  let n = sub n (logand (shift_right_logical n 1) 0x5555555555555555L) in
  let n =
    add
      (logand n 0x3333333333333333L)
      (logand (shift_right_logical n 2) 0x3333333333333333L)
  in
  let n = logand (add n (shift_right_logical n 4)) 0x0f0f0f0f0f0f0f0fL in
  to_int (shift_right_logical (mul n 0x0101010101010101L) 56)

(* check-free inner-loop primitive: caller has validated the range *)
let unsafe_read_tag m g =
  Char.code (Bytes.unsafe_get m.tags (g lsr 3)) land (1 lsl (g land 7)) <> 0

let read_tag m a =
  check m a 1;
  unsafe_read_tag m (gidx a)

let set_tag_bit m g v =
  let byte = Char.code (Bytes.get m.tags (g lsr 3)) in
  let bit = 1 lsl (g land 7) in
  let byte' = if v then byte lor bit else byte land lnot bit in
  Bytes.set m.tags (g lsr 3) (Char.chr byte')

let clear_tag m a =
  check m a 1;
  set_tag_bit m (gidx a) false

(* Clear tags of every granule overlapping [a, a+w). *)
let clear_tags_range m a w =
  let g0 = gidx a and g1 = gidx (a + w - 1) in
  for g = g0 to g1 do
    set_tag_bit m g false
  done

let read_u8 m a =
  check m a 1;
  Char.code (Bytes.get m.data a)

let write_u8 m a v =
  check m a 1;
  Bytes.set m.data a (Char.chr (v land 0xff));
  clear_tags_range m a 1

let read_u64 m a =
  check m a 8;
  Bytes.get_int64_le m.data a

(* Single-bit read of the little-endian u64 at [a]: equals
   [Int64.logand (read_u64 m a) (Int64.shift_left 1L bit) <> 0L] without
   boxing the word — the revocation-map probe runs this per tagged
   granule swept. *)
let read_u64_bit m a bit =
  check m a 8;
  Char.code (Bytes.get m.data (a + (bit lsr 3))) land (1 lsl (bit land 7)) <> 0

let write_u64 m a v =
  check m a 8;
  Bytes.set_int64_le m.data a v;
  clear_tags_range m a 8

let aligned a = a land (granule - 1) = 0

let read_cap m a =
  check m a granule;
  if not (aligned a) then invalid_arg "Mem.read_cap: unaligned";
  if unsafe_read_tag m (gidx a) then m.shadow.(gidx a)
  else
    let addr = Int64.to_int (Bytes.get_int64_le m.data a) in
    Capability.set_addr Capability.null addr

let write_cap m a c =
  check m a granule;
  if not (aligned a) then invalid_arg "Mem.write_cap: unaligned";
  let g = gidx a in
  Bytes.set_int64_le m.data a (Int64.of_int (Capability.addr c));
  Bytes.set_int64_le m.data (a + 8) 0L;
  if Capability.tag c then begin
    m.shadow.(g) <- c;
    set_tag_bit m g true
  end
  else set_tag_bit m g false

(* First/last whole granule of [lo, hi) clamped to the memory, as an
   inclusive granule-index range (empty iff g0 > g1). Hoisting this one
   range computation replaces the per-granule bounds [check] the checked
   entry points pay. *)
let granule_span m ~lo ~hi =
  let lo = max 0 lo and hi = min m.size hi in
  let g0 = (lo + granule - 1) / granule in
  let g1 = (hi / granule) - 1 in
  (g0, g1)

let iter_granules m ~lo ~hi f =
  let g0, g1 = granule_span m ~lo ~hi in
  for g = g0 to g1 do
    f (g * granule) (unsafe_read_tag m g)
  done

let word_of_tags m w = Bytes.get_int64_le m.tags (w lsl 3)

(* Mask selecting bits [b0, b1] (inclusive) of a 64-bit word. *)
let bit_mask b0 b1 =
  let width = b1 - b0 + 1 in
  if width >= 64 then -1L
  else Int64.shift_left (Int64.sub (Int64.shift_left 1L width) 1L) b0

let iter_tagged_words m ~lo ~hi f =
  let g0, g1 = granule_span m ~lo ~hi in
  if g0 <= g1 then begin
    let w0 = g0 lsr 6 and w1 = g1 lsr 6 in
    for w = w0 to w1 do
      let word = word_of_tags m w in
      if not (Int64.equal word 0L) then begin
        (* clip the edge words to the requested range *)
        let b0 = if w = w0 then g0 land 63 else 0 in
        let b1 = if w = w1 then g1 land 63 else 63 in
        let word = Int64.logand word (bit_mask b0 b1) in
        if not (Int64.equal word 0L) then f ((w lsl 6) * granule) word
      end
    done
  end

let count_tags m ~lo ~hi =
  let n = ref 0 in
  iter_tagged_words m ~lo ~hi (fun _ word -> n := !n + popcount64 word);
  !n

let find_tagged m ~lo ~hi =
  let found = ref None in
  (try
     iter_tagged_words m ~lo ~hi (fun base word ->
         (* lowest set bit = first tagged granule in this word *)
         let bit = popcount64 (Int64.sub (Int64.logand word (Int64.neg word)) 1L) in
         found := Some (base + (bit * granule));
         raise Exit)
   with Exit -> ());
  !found

let tag_word m a =
  check m a 1;
  check m (a + (63 * granule)) 1;
  if a land ((64 * granule) - 1) <> 0 then
    invalid_arg "Mem.tag_word: not 64-granule aligned";
  word_of_tags m (gidx a lsr 6)

(* Copy [len] bytes from [src] to [dst], preserving tags and shadow
   capabilities. Both ranges must be granule-aligned, as must [len];
   copy-on-write duplicates whole frames, which satisfies this. *)
let copy_range m ~src ~dst ~len =
  check m src len;
  check m dst len;
  if not (aligned src && aligned dst && len land (granule - 1) = 0) then
    invalid_arg "Mem.copy_range: unaligned";
  Bytes.blit m.data src m.data dst len;
  (* both ranges were checked above: the inner loop is check-free *)
  let g0 = gidx src and gd = gidx dst in
  for i = 0 to (len / granule) - 1 do
    let t = unsafe_read_tag m (g0 + i) in
    set_tag_bit m (gd + i) t;
    m.shadow.(gd + i) <- (if t then m.shadow.(g0 + i) else Capability.null)
  done

let fill m ~lo ~hi v =
  check m lo 0;
  check m hi 0;
  if hi > lo then begin
    Bytes.fill m.data lo (hi - lo) (Char.chr (v land 0xff));
    clear_tags_range m lo (hi - lo)
  end
