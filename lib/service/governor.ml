(* SLO-aware revocation governor. Watches queue depth, the serving-tail
   estimate and quarantine pressure, and actuates through the two hooks
   the revoker exposes: the epoch governor (WHEN an epoch opens) and the
   sweep pacer (HOW MUCH of the concurrent sweep runs per slice).

   Livelock safety: deferral is a bounded poll loop — each wait is a
   finite Machine.sleep, the total is capped by max_defer, and the force
   condition is the same Policy.should_block predicate that would park
   the application's allocators. The governor can therefore never hold
   an epoch back while allocation is blocked waiting for it: the moment
   blocking pressure exists, deferral ends (forced) and the epoch runs. *)

open Sim

type config = {
  defer_depth : int;
  defer_quantum : int;
  max_defer : int;
  quantum_pages : int;
  pace_depth : int;
  pace_quantum : int;
  eager_load : float;
}

let default_config =
  {
    defer_depth = 4;
    defer_quantum = 50_000 (* 20 µs poll while deferring an epoch *);
    max_defer = 25_000_000 (* 10 ms hard cap on any one wait loop *);
    quantum_pages = 8;
    pace_depth = 8;
    pace_quantum = 25_000 (* 10 µs poll between sweep slices *);
    eager_load = 0.3 (* eager trigger at 80% of the plain threshold *);
  }

type stats = {
  epochs_deferred : int;
  epochs_forced : int;
  eager_flushes : int;
  defer_cycles : int;
  quanta_granted : int;
  slo_events : int;
  brownout_defers : int;
}

type t = {
  cfg : config;
  m : Machine.t;
  mrs : Ccr.Mrs.t;
  rv : Ccr.Revoker.t;
  live : unit -> int;
  depth : unit -> int;
  p99 : unit -> float option;
  brownout : unit -> bool;
  target_p99_us : float;
  mutable s_deferred : int;
  mutable s_forced : int;
  mutable s_eager : int;
  mutable s_defer_cycles : int;
  mutable s_quanta : int;
  mutable s_slo : int;
  mutable s_brownout_defers : int;
}

let stats t =
  {
    epochs_deferred = t.s_deferred;
    epochs_forced = t.s_forced;
    eager_flushes = t.s_eager;
    defer_cycles = t.s_defer_cycles;
    quanta_granted = t.s_quanta;
    slo_events = t.s_slo;
    brownout_defers = t.s_brownout_defers;
  }

let emit t ctx ?arg2 kind arg =
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:(Machine.ctx_pid ctx) ?arg2 kind arg

(* The force condition IS the blocking condition: defer only while the
   application could still allocate freely if it wanted to. *)
let pressure t =
  Ccr.Policy.should_block (Ccr.Mrs.policy t.mrs) ~live:(t.live ())
    ~quarantine:(Ccr.Mrs.quarantine_bytes t.mrs)

let note_slo_breach t ctx =
  match t.p99 () with
  | Some est when est > t.target_p99_us ->
      t.s_slo <- t.s_slo + 1;
      emit t ctx
        ~arg2:(int_of_float t.target_p99_us)
        Trace.Slo_violation
        (int_of_float (Float.round est))
  | _ -> ()

let epoch_hook t ctx =
  (* Brownout mode: the host is already shedding traffic to survive, so
     revocation gets out of the way harder — any backlog at all defers
     the epoch, and the deferral budget doubles. Sampled once per epoch
     so a mid-defer brownout flip cannot unbound the loop. *)
  let browned = t.brownout () in
  let defer_depth = if browned then 0 else t.cfg.defer_depth in
  let max_defer = if browned then 2 * t.cfg.max_defer else t.cfg.max_defer in
  let deferred = ref 0 and forced = ref false in
  while (not !forced) && t.depth () > defer_depth && !deferred < max_defer do
    if pressure t then begin
      forced := true;
      t.s_forced <- t.s_forced + 1;
      emit t ctx ~arg2:(t.depth ()) Trace.Governor_force
        (Ccr.Mrs.quarantine_bytes t.mrs);
      note_slo_breach t ctx
    end
    else begin
      Machine.sleep ctx t.cfg.defer_quantum;
      deferred := !deferred + t.cfg.defer_quantum
    end
  done;
  if !deferred > 0 then begin
    t.s_deferred <- t.s_deferred + 1;
    if browned then t.s_brownout_defers <- t.s_brownout_defers + 1;
    t.s_defer_cycles <- t.s_defer_cycles + !deferred;
    emit t ctx ~arg2:(t.depth ()) Trace.Governor_defer !deferred
  end

let pace_hook t ctx ~visited =
  let waited = ref 0 in
  while
    t.depth () > t.cfg.pace_depth
    && !waited < t.cfg.max_defer
    && not (pressure t)
  do
    Machine.sleep ctx t.cfg.pace_quantum;
    waited := !waited + t.cfg.pace_quantum
  done;
  t.s_quanta <- t.s_quanta + 1;
  emit t ctx ~arg2:visited Trace.Governor_quantum t.cfg.quantum_pages;
  t.cfg.quantum_pages

let install ?(config = default_config) ?(target_p99_us = 1000.0)
    ?(p99 = fun () -> None) ?(brownout = fun () -> false) rt ~depth () =
  match (rt.Ccr.Runtime.mrs, rt.Ccr.Runtime.revoker) with
  | Some mrs, Some rv ->
      let t =
        {
          cfg = config;
          m = rt.Ccr.Runtime.machine;
          mrs;
          rv;
          live = rt.Ccr.Runtime.alloc.Alloc.Backend.live_bytes;
          depth;
          p99;
          brownout;
          target_p99_us;
          s_deferred = 0;
          s_forced = 0;
          s_eager = 0;
          s_defer_cycles = 0;
          s_quanta = 0;
          s_slo = 0;
          s_brownout_defers = 0;
        }
      in
      Ccr.Revoker.set_epoch_governor rv (Some (epoch_hook t));
      Ccr.Revoker.set_sweep_pacer rv (Some (pace_hook t));
      t
  | _ -> invalid_arg "Governor.install: Baseline runtime has no revoker"

let uninstall t =
  Ccr.Revoker.set_epoch_governor t.rv None;
  Ccr.Revoker.set_sweep_pacer t.rv None

let maybe_eager t ctx =
  let live = t.live () and q = Ccr.Mrs.quarantine_bytes t.mrs in
  if
    q > 0
    && (not (Ccr.Revoker.in_flight t.rv))
    && Ccr.Revoker.queued_bytes t.rv = 0
    && Ccr.Policy.should_revoke
         (Ccr.Policy.adaptive (Ccr.Mrs.policy t.mrs) ~load:t.cfg.eager_load)
         ~live ~quarantine:q
  then begin
    t.s_eager <- t.s_eager + 1;
    Ccr.Mrs.flush t.mrs ctx
  end
