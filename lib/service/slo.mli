(** SLO accounting from {e intended arrival time}.

    Every served request records [completion − intended arrival] into a
    log-bucketed {!Stats.Histogram} — queueing delay included. During a
    stop-the-world revocation pause the open-loop generator keeps
    stamping intended arrivals, so the pause surfaces as a cohort of
    long-latency samples instead of a gap in the record: the measurement
    has no coordinated omission. *)

type t

val create : ?target_p99_us:float -> unit -> t
(** Default target: 1000 µs. *)

val note_offered : t -> unit
(** Count a request at generation time, before admission control — the
    denominator of the served + shed = offered invariant. *)

val record : t -> intended:int -> completed:int -> float
(** Record one served request (times in cycles); returns its latency in
    µs. Raises [Invalid_argument] if [completed < intended]. *)

val offered : t -> int
val served : t -> int

val violations : t -> int
(** Served requests whose individual latency exceeded the target. *)

val target_p99_us : t -> float

val p99_estimate : t -> float option
(** [None] until at least 16 samples exist — the governor's control
    input, deliberately undefined while the population is noise. *)

val percentile : t -> float -> float option
(** [None] when empty. *)

val histogram : t -> Stats.Histogram.t
