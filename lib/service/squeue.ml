(* Bounded request queue with admission control. Both shedding decisions
   are traced individually (Req_shed) so the sanitizer and the accounting
   check can reconcile served + shed = offered without trusting the
   aggregate counters. *)

open Sim

type req = { id : int; intended : int }

type t = {
  m : Machine.t;
  max_depth : int;
  deadline : int option;
  q : req Queue.t;
  nonempty : Machine.condvar;
  mutable closed : bool;
  mutable accepted : int;
  mutable shed_depth : int;
  mutable shed_deadline : int;
}

let create m ~max_depth ?deadline () =
  if max_depth <= 0 then invalid_arg "Squeue.create: max_depth must be > 0";
  {
    m;
    max_depth;
    deadline;
    q = Queue.create ();
    nonempty = Machine.condvar ();
    closed = false;
    accepted = 0;
    shed_depth = 0;
    shed_deadline = 0;
  }

let depth t = Queue.length t.q
let accepted t = t.accepted
let shed_depth t = t.shed_depth
let shed_deadline t = t.shed_deadline
let shed t = t.shed_depth + t.shed_deadline

let trace_shed t ctx ~id ~why =
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:(Machine.ctx_pid ctx) ~arg2:why Trace.Req_shed id

let offer t ctx req =
  if t.closed then invalid_arg "Squeue.offer: queue is closed";
  if Queue.length t.q >= t.max_depth then begin
    t.shed_depth <- t.shed_depth + 1;
    trace_shed t ctx ~id:req.id ~why:0;
    false
  end
  else begin
    t.accepted <- t.accepted + 1;
    Queue.push req t.q;
    Machine.broadcast ctx t.nonempty;
    true
  end

let rec take t ctx =
  while Queue.is_empty t.q && not t.closed do
    Machine.wait ctx t.nonempty
  done;
  if Queue.is_empty t.q then None
  else
    let req = Queue.pop t.q in
    match t.deadline with
    | Some d when Machine.now ctx - req.intended > d ->
        (* Stale before service even starts: complete-then-miss would
           waste server cycles on an answer nobody is waiting for, so
           deadline-shed it at dispatch and move on. *)
        t.shed_deadline <- t.shed_deadline + 1;
        trace_shed t ctx ~id:req.id ~why:1;
        take t ctx
    | _ -> Some req

let close t ctx =
  t.closed <- true;
  Machine.broadcast ctx t.nonempty
