(* Bounded request queue with admission control. Every drop decision
   is traced individually (Req_shed / Req_lost) so the sanitizer and the
   accounting check can reconcile served + shed + lost = offered without
   trusting the aggregate counters. *)

open Sim

type req = {
  id : int;
  intended : int;
  cls : int;
  deadline : int option;
  tenant : int;
}

let why_depth = 0
let why_deadline = 1
let why_brownout = 2
let why_quota = 3

type brownout = { b_enter : int; b_exit : int; b_min_cls : int }

let default_brownout = { b_enter = 48; b_exit = 12; b_min_cls = 2 }

type t = {
  m : Machine.t;
  max_depth : int;
  deadline : int option;
  brownout : brownout option;
  quota_gate : (int -> bool) option;
  q : req Queue.t;
  nonempty : Machine.condvar;
  mutable closed : bool;
  mutable accepted : int;
  mutable shed_depth : int;
  mutable shed_deadline : int;
  mutable shed_brownout : int;
  mutable shed_quota : int;
  mutable lost : int;
  mutable browned_out : bool;
  mutable brownout_shifts : int;
  mutable shed_log : (req * int * int) list;
}

let create m ~max_depth ?deadline ?brownout ?quota_gate () =
  if max_depth <= 0 then invalid_arg "Squeue.create: max_depth must be > 0";
  (match brownout with
  | Some b when b.b_enter <= b.b_exit ->
      invalid_arg "Squeue.create: brownout enter must exceed exit (hysteresis)"
  | Some b when b.b_enter > max_depth ->
      invalid_arg "Squeue.create: brownout enter beyond max_depth never fires"
  | _ -> ());
  {
    m;
    max_depth;
    deadline;
    brownout;
    quota_gate;
    q = Queue.create ();
    nonempty = Machine.condvar ();
    closed = false;
    accepted = 0;
    shed_depth = 0;
    shed_deadline = 0;
    shed_brownout = 0;
    shed_quota = 0;
    lost = 0;
    browned_out = false;
    brownout_shifts = 0;
    shed_log = [];
  }

let depth t = Queue.length t.q
let accepted t = t.accepted
let shed_depth t = t.shed_depth
let shed_deadline t = t.shed_deadline
let shed_brownout t = t.shed_brownout
let shed_quota t = t.shed_quota
let shed t = t.shed_depth + t.shed_deadline + t.shed_brownout + t.shed_quota
let lost t = t.lost
let brownout_active t = t.browned_out
let brownout_shifts t = t.brownout_shifts
let shed_log t = List.rev t.shed_log

let trace_shed t ctx ~id ~why =
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:(Machine.ctx_pid ctx) ~arg2:why Trace.Req_shed id

(* Hysteresis: flip on only when depth reaches the enter threshold, off
   only once it has drained to the exit threshold — the band between the
   two absorbs oscillation around a single trip point. *)
let update_brownout t ctx =
  match t.brownout with
  | None -> ()
  | Some b ->
      let d = Queue.length t.q in
      let next =
        if t.browned_out then d > b.b_exit else d >= b.b_enter
      in
      if next <> t.browned_out then begin
        t.browned_out <- next;
        t.brownout_shifts <- t.brownout_shifts + 1;
        Machine.trace_emit t.m ~time:(Machine.now ctx)
          ~core:(Machine.core_id ctx) ~pid:(Machine.ctx_pid ctx) ~arg2:d
          Trace.Brownout_shift
          (if next then 1 else 0)
      end

let record_shed t ctx req ~why =
  (match why with
  | 0 -> t.shed_depth <- t.shed_depth + 1
  | 1 -> t.shed_deadline <- t.shed_deadline + 1
  | 2 -> t.shed_brownout <- t.shed_brownout + 1
  | _ -> t.shed_quota <- t.shed_quota + 1);
  t.shed_log <- (req, why, Machine.now ctx) :: t.shed_log;
  trace_shed t ctx ~id:req.id ~why

let offer t ctx req =
  if t.closed then invalid_arg "Squeue.offer: queue is closed";
  update_brownout t ctx;
  if
    match t.quota_gate with
    | Some over -> over req.tenant
    | None -> false
  then begin
    (* Over-quota tenants are shed before any queueing check: their
       requests would only allocate into a heap they have no budget
       for, so they never consume admission capacity. *)
    record_shed t ctx req ~why:why_quota;
    false
  end
  else if t.browned_out && req.cls >= (Option.get t.brownout).b_min_cls then begin
    record_shed t ctx req ~why:why_brownout;
    false
  end
  else if Queue.length t.q >= t.max_depth then begin
    record_shed t ctx req ~why:why_depth;
    false
  end
  else begin
    t.accepted <- t.accepted + 1;
    Queue.push req t.q;
    Machine.broadcast ctx t.nonempty;
    true
  end

let rec take t ctx =
  while Queue.is_empty t.q && not t.closed do
    Machine.wait ctx t.nonempty
  done;
  if Queue.is_empty t.q then None
  else begin
    let req = Queue.pop t.q in
    update_brownout t ctx;
    match (match req.deadline with Some _ as d -> d | None -> t.deadline) with
    | Some d when Machine.now ctx - req.intended > d ->
        (* Stale before service even starts: complete-then-miss would
           waste server cycles on an answer nobody is waiting for, so
           deadline-shed it at dispatch and move on. *)
        record_shed t ctx req ~why:why_deadline;
        take t ctx
    | _ -> Some req
  end

(* The crash half of lost-in-flight semantics: everything admitted but
   still queued when the host dies never gets an answer. The requests
   are returned so the caller can fold them into its per-request results
   (the client side observes each loss by timeout, not instantly). *)
let drain_lost t ctx =
  let n = Queue.length t.q in
  let dropped = ref [] in
  for _ = 1 to n do
    let req = Queue.pop t.q in
    t.lost <- t.lost + 1;
    Machine.trace_emit t.m ~time:(Machine.now ctx)
      ~core:(Machine.core_id ctx) ~pid:(Machine.ctx_pid ctx) ~arg2:0
      Trace.Req_lost req.id;
    dropped := req :: !dropped
  done;
  update_brownout t ctx;
  List.rev !dropped

let close t ctx =
  t.closed <- true;
  Machine.broadcast ctx t.nonempty
