(* Open-loop arrival schedules. The whole schedule is drawn up front from
   a seeded Prng, so it depends only on (pattern, requests, seed) — never
   on how fast the server keeps up. That independence is what makes the
   serving layer open-loop: a stalled server watches its backlog grow
   instead of silently slowing the clients down. *)

open Sim

type pattern =
  | Poisson of float
  | Bursty of { base : float; peak : float; period_us : float; duty : float }
  | Ramp of { from_rate : float; to_rate : float }
  | Diurnal of { low : float; high : float; period_us : float }

type config = { pattern : pattern; requests : int; seed : int }

let pattern_name = function
  | Poisson _ -> "poisson"
  | Bursty _ -> "bursty"
  | Ramp _ -> "ramp"
  | Diurnal _ -> "diurnal"

let pi = 4.0 *. atan 1.0

(* Instantaneous offered rate (req/s). Time-shaped patterns (bursty,
   diurnal) key off the simulated arrival clock; the ramp keys off
   request-index progress so its endpoints are exact regardless of how
   long the run takes. *)
let rate_at pattern ~t_us ~progress =
  match pattern with
  | Poisson r -> r
  | Bursty { base; peak; period_us; duty } ->
      let phase = Float.rem t_us period_us in
      if phase < duty *. period_us then peak else base
  | Ramp { from_rate; to_rate } ->
      from_rate +. (progress *. (to_rate -. from_rate))
  | Diurnal { low; high; period_us } ->
      let phase = Float.rem t_us period_us /. period_us in
      let mid = (low +. high) /. 2.0 and amp = (high -. low) /. 2.0 in
      mid +. (amp *. sin (2.0 *. pi *. phase))

(* Request classes for priority-aware shedding. Lower codes are more
   important: brownout degradation sheds from the highest code down. *)

type cls = Critical | Normal | Background

let cls_code = function Critical -> 0 | Normal -> 1 | Background -> 2
let all_classes = [ Critical; Normal; Background ]

let cls_name = function
  | Critical -> "critical"
  | Normal -> "normal"
  | Background -> "background"

let cls_of_code = function
  | 0 -> Critical
  | 1 -> Normal
  | 2 -> Background
  | c -> invalid_arg (Printf.sprintf "Loadgen.cls_of_code: %d" c)

(* Per-class deadline stretch: interactive traffic has the tightest
   budget; background work tolerates (deadline x factor) queueing, and
   None means it never deadline-sheds at all (batch semantics). *)
let deadline_factor = function
  | Critical -> Some 1.0
  | Normal -> Some 4.0
  | Background -> None

let class_stream ~seed ~requests ~critical ~background =
  if requests < 0 then invalid_arg "Loadgen.class_stream: negative requests";
  if
    critical < 0.0 || background < 0.0
    || critical +. background > 1.0 +. 1e-9
  then invalid_arg "Loadgen.class_stream: bad class mix";
  let rng = Prng.create ~seed:(seed lxor 0x636c_6173 (* "clas" *)) in
  Array.init requests (fun _ ->
      let u = Prng.float rng 1.0 in
      if u < critical then Critical
      else if u < critical +. background then Background
      else Normal)

(* Per-request user identities for sharded (fleet) serving. A separate
   splitmix stream from the arrival schedule's, so adding user sampling
   to an existing trace never perturbs its arrival times. The population
   stands in for the service's whole registered user base (millions);
   each request samples one of them uniformly. *)
let user_stream ~seed ~population ~requests =
  if population < 1 then invalid_arg "Loadgen.user_stream: empty population";
  if requests < 0 then invalid_arg "Loadgen.user_stream: negative requests";
  let rng = Prng.create ~seed:(seed lxor 0x7573_6572 (* "user" *)) in
  Array.init requests (fun _ -> Prng.int rng population)

let schedule cfg =
  if cfg.requests < 0 then
    invalid_arg "Loadgen.schedule: negative request count";
  let rng = Prng.create ~seed:cfg.seed in
  let arr = Array.make (max cfg.requests 1) 0 in
  let t_us = ref 0.0 in
  for i = 0 to cfg.requests - 1 do
    let progress =
      if cfg.requests <= 1 then 0.0
      else float_of_int i /. float_of_int (cfg.requests - 1)
    in
    let rate = Float.max 1.0 (rate_at cfg.pattern ~t_us:!t_us ~progress) in
    let dt = Prng.exponential rng ~mean:(1e6 /. rate) in
    t_us := !t_us +. dt;
    arr.(i) <- Cost.cycles_of_us !t_us
  done;
  Array.sub arr 0 cfg.requests
