(** SLO-aware revocation governor.

    Decides {e when} a revocation epoch opens and {e how much} of the
    concurrent sweep runs at a time, using three control inputs:

    - queue depth (instantaneous foreground load, via the [depth]
      closure),
    - the serving p99 estimate (via the [p99] closure),
    - quarantine pressure ({!Ccr.Policy.should_block} over live and
      quarantined bytes).

    Actuation points, wired into the revoker by {!install}:

    - {b epoch governor} ({!Ccr.Revoker.set_epoch_governor}): while the
      queue is deeper than [defer_depth], hold the pending epoch back in
      bounded sleep polls — emitting one [Governor_defer] event with the
      total cycles held. Deferral ends when (a) the queue drains below
      the threshold, (b) the [max_defer] cap expires, or (c) quarantine
      pressure reaches the {e blocking} threshold, in which case the
      epoch is {e forced} ([Governor_force], plus [Slo_violation] when
      the p99 estimate is already over target). Because the force
      condition equals the condition under which allocators block,
      deferral can never deadlock against a blocked application.
    - {b sweep pacer} ({!Ccr.Revoker.set_sweep_pacer}): slices the
      concurrent sweep into [quantum_pages]-page quanta, pausing between
      slices while the queue is deeper than [pace_depth] (same bounded
      wait and pressure escape). Each grant emits [Governor_quantum].

    Plus one advisory input the server threads call: {!maybe_eager}
    flushes quarantine early in a load trough, using the eager end of
    {!Ccr.Policy.adaptive}, so epochs migrate into idle periods. *)

type config = {
  defer_depth : int;  (** defer epochs while queue depth exceeds this *)
  defer_quantum : int;  (** cycles per deferral poll sleep *)
  max_defer : int;  (** cap (cycles) on any one defer / pace wait loop *)
  quantum_pages : int;  (** pages per concurrent-sweep slice *)
  pace_depth : int;  (** pause between slices while depth exceeds this *)
  pace_quantum : int;  (** cycles per pacing poll sleep *)
  eager_load : float;
      (** the [load] fed to {!Ccr.Policy.adaptive} by {!maybe_eager}:
          0 flushes at half the plain trigger (many extra epochs), values
          near 0.5 only pull each epoch slightly forward into the trough.
          Default 0.3 ⇒ eager trigger at 80% of the plain threshold. *)
}

val default_config : config

type stats = {
  epochs_deferred : int;  (** epochs that waited at least one poll *)
  epochs_forced : int;  (** deferrals ended by blocking pressure *)
  eager_flushes : int;  (** {!maybe_eager} flushes in load troughs *)
  defer_cycles : int;  (** total cycles epochs were held back *)
  quanta_granted : int;  (** concurrent-sweep slices granted *)
  slo_events : int;  (** [Slo_violation] events emitted *)
  brownout_defers : int;  (** deferrals taken while brownout was active *)
}

type t

val install :
  ?config:config ->
  ?target_p99_us:float ->
  ?p99:(unit -> float option) ->
  ?brownout:(unit -> bool) ->
  Ccr.Runtime.t ->
  depth:(unit -> int) ->
  unit ->
  t
(** Wire both hooks into the runtime's revoker. [depth], [p99] and
    [brownout] are closures (not concrete queue types) so tests can drive
    the governor's decisions directly. While [brownout] returns [true]
    the epoch governor defers {e harder}: any backlog at all holds the
    epoch back (the [defer_depth] threshold drops to 0) and the
    [max_defer] cap doubles — a degraded host spends its cycles on
    critical traffic, not revocation. Defaults: [target_p99_us] 1000 µs,
    [p99] always unknown, [brownout] never active. Raises
    [Invalid_argument] on a [Baseline] runtime. *)

val uninstall : t -> unit
(** Clear both hooks from the revoker. *)

val maybe_eager : t -> Sim.Machine.ctx -> unit
(** Trough-side actuation, called by a server thread that found the
    queue empty: if the revoker is fully idle and the eager adaptive
    trigger ([Ccr.Policy.adaptive ~load:eager_load]) fires, flush
    quarantine now so the epoch runs against an empty queue. *)

val stats : t -> stats
