(* Per-request SLO accounting at intended arrival time. Latency =
   completion − intended arrival, so a request that sat out a
   stop-the-world pause in the queue reports the whole wait — the
   coordinated-omission-free measurement (see DESIGN.md). *)

open Sim

type t = {
  hist : Stats.Histogram.t;
  target_p99_us : float;
  mutable offered : int;
  mutable served : int;
  mutable violations : int;
}

let create ?(target_p99_us = 1000.0) () =
  {
    hist = Stats.Histogram.create ();
    target_p99_us;
    offered = 0;
    served = 0;
    violations = 0;
  }

let target_p99_us t = t.target_p99_us
let note_offered t = t.offered <- t.offered + 1
let offered t = t.offered
let served t = t.served
let violations t = t.violations

let record t ~intended ~completed =
  if completed < intended then
    invalid_arg "Slo.record: completion precedes intended arrival";
  let lat_us = Cost.cycles_to_us (completed - intended) in
  Stats.Histogram.record t.hist lat_us;
  t.served <- t.served + 1;
  if lat_us > t.target_p99_us then t.violations <- t.violations + 1;
  lat_us

(* A p99 estimate needs a sample population behind it; below [min_samples]
   the governor treats the tail as unknown rather than trusting noise. *)
let min_samples = 16

let p99_estimate t =
  if Stats.Histogram.count t.hist < min_samples then None
  else Some (Stats.Histogram.percentile t.hist 99.0)

let percentile t p =
  if Stats.Histogram.count t.hist = 0 then None
  else Some (Stats.Histogram.percentile t.hist p)

let histogram t = t.hist
