(** Open-loop load generation: seeded arrival-time schedules.

    An arrival schedule is drawn once, up front, from a splitmix64 Prng —
    a pure function of (pattern, request count, seed). The generator
    thread then releases requests at those *intended* times no matter how
    the server is doing, which is the open-loop discipline that makes
    coordinated omission impossible by construction: a server stall
    cannot slow the arrival process down, it can only grow the queue. *)

type pattern =
  | Poisson of float  (** constant offered rate, req/s *)
  | Bursty of { base : float; peak : float; period_us : float; duty : float }
      (** square wave: [peak] req/s for the first [duty] fraction of each
          [period_us] window, [base] req/s for the rest *)
  | Ramp of { from_rate : float; to_rate : float }
      (** linear in request index: first request offered at [from_rate],
          last at [to_rate] (req/s) *)
  | Diurnal of { low : float; high : float; period_us : float }
      (** sinusoid between [low] and [high] req/s with period [period_us]
          — a compressed day/night cycle with troughs for the governor to
          defer revocation into *)

type config = { pattern : pattern; requests : int; seed : int }

val pattern_name : pattern -> string

val schedule : config -> int array
(** Intended arrival times in cycles, nondecreasing, length
    [config.requests]. Instantaneous rates are clamped to ≥ 1 req/s.
    Deterministic: equal configs give equal arrays. *)

type cls = Critical | Normal | Background
(** Request priority classes, most to least important. Brownout
    degradation sheds [Background] (then [Normal]) before touching
    [Critical] traffic. *)

val cls_code : cls -> int
(** Stable integer code: 0 critical, 1 normal, 2 background — shedding
    order is highest code first. *)

val cls_of_code : int -> cls
(** Inverse of {!cls_code}; raises [Invalid_argument] on other codes. *)

val cls_name : cls -> string
val all_classes : cls list

val deadline_factor : cls -> float option
(** Per-class stretch applied to a base deadline: [Critical] 1x,
    [Normal] 4x, [Background] [None] (batch traffic never
    deadline-sheds). *)

val class_stream :
  seed:int -> requests:int -> critical:float -> background:float -> cls array
(** One class per request from a splitmix stream independent of
    {!schedule} and {!user_stream}; [critical] and [background] are the
    population fractions (the rest is [Normal]). Deterministic in all
    arguments; raises [Invalid_argument] on a negative count or a mix
    outside [\[0,1\]]. *)

val user_stream : seed:int -> population:int -> requests:int -> int array
(** One user id in [\[0, population)] per request, drawn uniformly from a
    splitmix stream independent of {!schedule}'s — a fleet balancer
    shards on these. Deterministic in all arguments; raises
    [Invalid_argument] if [population < 1] or [requests < 0]. *)
