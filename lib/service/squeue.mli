(** Bounded request queue with admission control, priority-aware load
    shedding, and crash loss.

    Four drop policies, each traced per-request with [Trace.Req_shed]:

    - {b queue-depth} ([arg2 = 0]): [offer] refuses a request when the
      queue is already at [max_depth] — backpressure at admission;
    - {b deadline} ([arg2 = 1]): [take] discards a request whose queueing
      delay already exceeds its deadline — it would miss its SLO even
      with instantaneous service, so serving it only burns cycles. The
      effective deadline is the request's own [deadline] field when set,
      else the queue-wide default;
    - {b brownout} ([arg2 = 2]): while the brownout controller is
      active, [offer] sheds every request whose class code is at least
      [b_min_cls] — graceful degradation drops the least important
      traffic first, keeping admission capacity for critical requests;
    - {b quota} ([arg2 = 3]): when a [quota_gate] is installed, [offer]
      sheds every request whose tenant the gate reports over quota —
      before any queueing check, so an over-budget tenant's traffic
      never consumes admission capacity it cannot back with heap.

    The brownout controller is a hysteresis band over instantaneous
    queue depth, evaluated at every offer/take/drain: it engages when
    depth reaches [b_enter] and disengages only once depth has drained
    to [b_exit] ([b_exit < b_enter]), so it cannot flap around a single
    threshold. Transitions are traced as [Trace.Brownout_shift].

    {!drain_lost} models the crash half of lost-in-flight semantics:
    everything admitted but still queued is dropped (traced
    [Trace.Req_lost]) and returned to the caller.

    Single-machine cooperative threading: no internal locking needed
    beyond the condvar handshake. *)

type req = {
  id : int;
  intended : int;  (** intended arrival, cycles *)
  cls : int;  (** priority class code ({!Service.Loadgen.cls_code}) *)
  deadline : int option;
      (** per-request deadline (cycles of queueing delay); [None] falls
          back to the queue-wide default *)
  tenant : int;
      (** owning tenant pid for the quota gate; 0 for single-tenant rigs *)
}

val why_depth : int
val why_deadline : int
val why_brownout : int
val why_quota : int
(** The [arg2] codes carried by [Req_shed] and {!shed_log}. *)

type brownout = {
  b_enter : int;  (** engage when depth at an offer reaches this *)
  b_exit : int;  (** disengage once depth has drained to this *)
  b_min_cls : int;  (** shed class codes >= this while engaged *)
}

val default_brownout : brownout
(** Enter at depth 48, exit at 12, shed only [Background] (code 2). *)

type t

val create :
  Sim.Machine.t ->
  max_depth:int ->
  ?deadline:int ->
  ?brownout:brownout ->
  ?quota_gate:(int -> bool) ->
  unit ->
  t
(** No deadline dropping unless [deadline] (or a per-request deadline)
    is given; no brownout shedding unless [brownout] is given; no quota
    shedding unless [quota_gate] is given ([quota_gate tenant] returning
    [true] means the tenant is over quota {e right now} — typically
    [Tenant.Ledger.over_quota]). Raises [Invalid_argument] if
    [max_depth <= 0], if the brownout band is inverted
    ([b_enter <= b_exit]), or if [b_enter > max_depth] (the controller
    could never engage). *)

val offer : t -> Sim.Machine.ctx -> req -> bool
(** Enqueue, or shed ([false]) on brownout class or queue depth — in
    that order, so degraded-mode drops are cheap rejections that never
    consume queue capacity. Raises [Invalid_argument] after {!close} —
    the generator owns the queue's lifetime. *)

val take : t -> Sim.Machine.ctx -> req option
(** Block until a request is available; [None] once the queue is closed
    {e and} drained. Deadline-expired requests are shed internally and
    never returned. *)

val drain_lost : t -> Sim.Machine.ctx -> req list
(** Drop everything currently queued — the host crashed with these
    admitted but unanswered. Each is counted in {!lost} and traced as
    [Trace.Req_lost] ([arg2 = 0]); the list is returned in queue order
    so the caller can record per-request outcomes. *)

val close : t -> Sim.Machine.ctx -> unit
(** Generator is done: wake all waiting servers; [take] drains what is
    left, then returns [None]. *)

val depth : t -> int
val accepted : t -> int
val shed_depth : t -> int
val shed_deadline : t -> int
val shed_brownout : t -> int
val shed_quota : t -> int

val shed : t -> int
(** [shed_depth + shed_deadline + shed_brownout + shed_quota]. *)

val lost : t -> int
(** Requests dropped by {!drain_lost}. *)

val brownout_active : t -> bool
val brownout_shifts : t -> int

val shed_log : t -> (req * int * int) list
(** Every shed request as [(req, why, at)] in shed order — the
    per-request record behind the aggregate counters. *)
