(** Bounded request queue with admission control and load shedding.

    Two drop policies, each traced per-request with [Trace.Req_shed]:

    - {b queue-depth} ([arg2 = 0]): [offer] refuses a request when the
      queue is already at [max_depth] — backpressure at admission;
    - {b deadline} ([arg2 = 1]): [take] discards a request whose queueing
      delay already exceeds [deadline] cycles — it would miss its SLO
      even with instantaneous service, so serving it only burns cycles.

    Single-machine cooperative threading: no internal locking needed
    beyond the condvar handshake. *)

type req = { id : int; intended : int  (** intended arrival, cycles *) }

type t

val create : Sim.Machine.t -> max_depth:int -> ?deadline:int -> unit -> t
(** No deadline dropping unless [deadline] is given.
    Raises [Invalid_argument] if [max_depth <= 0]. *)

val offer : t -> Sim.Machine.ctx -> req -> bool
(** Enqueue, or shed on depth ([false]). Raises [Invalid_argument] after
    {!close} — the generator owns the queue's lifetime. *)

val take : t -> Sim.Machine.ctx -> req option
(** Block until a request is available; [None] once the queue is closed
    {e and} drained. Deadline-expired requests are shed internally and
    never returned. *)

val close : t -> Sim.Machine.ctx -> unit
(** Generator is done: wake all waiting servers; [take] drains what is
    left, then returns [None]. *)

val depth : t -> int
val accepted : t -> int
val shed_depth : t -> int
val shed_deadline : t -> int
val shed : t -> int
(** [shed_depth + shed_deadline]. *)
