type t = {
  bpd : int; (* buckets per decade *)
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let nbuckets bpd lo hi =
  int_of_float (ceil (Float.log10 (hi /. lo) *. float_of_int bpd)) + 1

let create ?(buckets_per_decade = 32) ?(lo = 0.1) ?(hi = 1e7) () =
  if lo <= 0.0 || hi <= lo then invalid_arg "Histogram.create: bad range";
  {
    bpd = buckets_per_decade;
    lo;
    hi;
    counts = Array.make (nbuckets buckets_per_decade lo hi) 0;
    total = 0;
  }

let bucket_of t v =
  if v <= t.lo then 0
  else if v >= t.hi then Array.length t.counts - 1
  else
    let b = int_of_float (Float.log10 (v /. t.lo) *. float_of_int t.bpd) in
    max 0 (min (Array.length t.counts - 1) b)

(* upper edge of a bucket *)
let value_of t b = t.lo *. (10.0 ** (float_of_int (b + 1) /. float_of_int t.bpd))
let mid_of t b = t.lo *. (10.0 ** ((float_of_int b +. 0.5) /. float_of_int t.bpd))

let record t v =
  let b = bucket_of t v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1

let count t = t.total

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty";
  let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
  let target =
    max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.total)))
  in
  let rec go b acc =
    if b >= Array.length t.counts then value_of t (Array.length t.counts - 1)
    else
      let acc = acc + t.counts.(b) in
      if acc >= target then value_of t b else go (b + 1) acc
  in
  go 0 0

let percentile_opt t p = if t.total = 0 then None else Some (percentile t p)

let mean t =
  if t.total = 0 then invalid_arg "Histogram.mean: empty";
  let sum = ref 0.0 in
  Array.iteri (fun b n -> sum := !sum +. (float_of_int n *. mid_of t b)) t.counts;
  !sum /. float_of_int t.total

let merge a b =
  if a.bpd <> b.bpd || a.lo <> b.lo || a.hi <> b.hi then
    invalid_arg "Histogram.merge: geometry mismatch";
  let m = create ~buckets_per_decade:a.bpd ~lo:a.lo ~hi:a.hi () in
  Array.iteri (fun i n -> m.counts.(i) <- n + b.counts.(i)) a.counts;
  m.total <- a.total + b.total;
  m

(* Bucket-wise integer sums commute and associate, so any merge order
   over histograms of one geometry yields the same counts — the property
   fleet-wide aggregation relies on when per-host histograms arrive in
   whatever order the worker pool finished them. *)
let merge_all = function
  | [] -> create ()
  | first :: _ as hs ->
      let m = create ~buckets_per_decade:first.bpd ~lo:first.lo ~hi:first.hi () in
      List.iter
        (fun h ->
          if h.bpd <> m.bpd || h.lo <> m.lo || h.hi <> m.hi then
            invalid_arg "Histogram.merge_all: geometry mismatch";
          Array.iteri (fun i n -> m.counts.(i) <- m.counts.(i) + n) h.counts;
          m.total <- m.total + h.total)
        hs;
      m

let max_relative_error t = (10.0 ** (1.0 /. float_of_int t.bpd)) -. 1.0
