(** Log-bucketed (HDR-style) latency histograms.

    Constant memory however many samples arrive, with bounded relative
    error on percentile queries — what a production latency recorder
    uses where the workloads here keep raw sample arrays. *)

type t

val create : ?buckets_per_decade:int -> ?lo:float -> ?hi:float -> unit -> t
(** Defaults: 32 buckets/decade over [\[1e-1, 1e7)] (microseconds). Values
    outside the range clamp to the edge buckets. *)

val record : t -> float -> unit
val count : t -> int
val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]: an upper bound on the true
    percentile with relative error bounded by the bucket width — the
    reported value is the {e upper edge} of the bucket holding the
    [ceil (p/100 * count)]-th sample ([p] clamps into the range, and the
    target rank is floored at 1, so [p = 0] on a nonempty histogram is
    the first occupied bucket's edge). A single-sample histogram reports
    that sample's bucket edge at every [p]; values recorded at or beyond
    the range edges land in the clamped edge buckets and report those
    buckets' edges. Raises [Invalid_argument] when empty. *)

val percentile_opt : t -> float -> float option
(** {!percentile} that reports an empty histogram as [None] instead of
    raising — for callers aggregating sparse slices (e.g. per-time-slice
    fleet curves) where emptiness is data, not a bug. *)

val mean : t -> float
(** Approximate (bucket-midpoint) mean. *)

val merge : t -> t -> t
(** Combine two histograms with identical geometry. *)

val merge_all : t list -> t
(** Combine any number of histograms with identical geometry into a
    fresh one. Associative and order-independent (bucket-wise sums), so
    fleet-wide percentile aggregation does not depend on the order hosts
    report in; empty inputs contribute nothing. [merge_all \[\]] is an
    empty default-geometry histogram. Raises [Invalid_argument] on a
    geometry mismatch. *)

val max_relative_error : t -> float
(** The bucket-width bound on percentile error, e.g. ~0.075 for 32
    buckets/decade. *)
