(* Unit and property tests for the capability model. *)

module Cap = Cheri.Capability
module Perms = Cheri.Perms
module Compress = Cheri.Compress

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- Perms ---- *)

let test_perms_basics () =
  check "empty subset all" true (Perms.subset Perms.empty Perms.all);
  check "all not subset empty" false (Perms.subset Perms.all Perms.empty);
  check "load in read_write" true (Perms.mem Perms.read_write Perms.load);
  check "execute not in read_write" false (Perms.mem Perms.read_write Perms.execute);
  let p = Perms.remove Perms.all Perms.store in
  check "removed store" false (Perms.mem p Perms.store);
  check "kept load" true (Perms.mem p Perms.load);
  check_int "roundtrip int" (Perms.to_int Perms.read_write)
    (Perms.to_int (Perms.of_int (Perms.to_int Perms.read_write)))

let test_perms_lattice () =
  let u = Perms.union Perms.load Perms.store in
  check "inter union load" true (Perms.equal (Perms.inter u Perms.load) Perms.load);
  check "union comm" true
    (Perms.equal (Perms.union Perms.load Perms.store) (Perms.union Perms.store Perms.load))

(* ---- Compress ---- *)

let test_exact_small () =
  check "small exact" true (Compress.is_exact ~base:48 ~length:100);
  check_int "align small" 1 (Compress.required_alignment 100);
  check_int "round small" 100 (Compress.round_length 100)

let test_padding_large () =
  let base = 12345 and length = 1 lsl 20 in
  let base', length' = Compress.representable ~base ~length in
  check "base' <= base" true (base' <= base);
  check "covers top" true (base' + length' >= base + length);
  let a = Compress.required_alignment length in
  check "a power of two" true (a land (a - 1) = 0);
  check_int "base aligned" 0 (base' mod a);
  (* aligned request of rounded length is exact *)
  let l = Compress.round_length length in
  check "aligned is exact" true (Compress.is_exact ~base:(4 * a) ~length:l)

let test_window_contains_bounds () =
  let lo, hi = Compress.representable_window ~base:4096 ~length:65536 in
  check "lo <= base" true (lo <= 4096);
  check "hi >= top" true (hi >= 4096 + 65536)

(* ---- Capability unit tests ---- *)

let root () = Cap.root ~length:(1 lsl 32)

let test_root () =
  let r = root () in
  check "tagged" true (Cap.tag r);
  check_int "base" 0 (Cap.base r);
  check "all perms" true (Perms.equal (Cap.perms r) Perms.all);
  check "in bounds" true (Cap.in_bounds r)

let test_set_bounds_basic () =
  let c = Cap.set_bounds (root ()) ~base:4096 ~length:256 in
  check "tagged" true (Cap.tag c);
  check_int "base" 4096 (Cap.base c);
  check_int "length" 256 (Cap.length c);
  check_int "addr at base" 4096 (Cap.addr c)

let test_set_bounds_escape_untags () =
  let parent = Cap.set_bounds (root ()) ~base:4096 ~length:256 in
  let c = Cap.set_bounds parent ~base:4000 ~length:100 in
  check "escape below untagged" false (Cap.tag c);
  let c = Cap.set_bounds parent ~base:4300 ~length:100 in
  check "escape above untagged" false (Cap.tag c);
  let c = Cap.set_bounds parent ~base:4100 ~length:100 in
  check "inside tagged" true (Cap.tag c)

let test_set_bounds_negative () =
  check "negative length untagged" false
    (Cap.tag (Cap.set_bounds (root ()) ~base:0 ~length:(-1)))

let test_untagged_derivation () =
  let d = Cap.set_bounds Cap.null ~base:0 ~length:16 in
  check "derive from null untagged" false (Cap.tag d)

let test_set_addr_window () =
  let c = Cap.set_bounds (root ()) ~base:65536 ~length:4096 in
  let inside = Cap.set_addr c 66000 in
  check "inside keeps tag" true (Cap.tag inside);
  check_int "addr moved" 66000 (Cap.addr inside);
  let near = Cap.set_addr c (65536 + 4096 + 100) in
  check "near oob keeps tag (representable)" true (Cap.tag near);
  check "near oob not dereferenceable" false (Cap.can_load near);
  let far = Cap.set_addr c (1 lsl 30) in
  check "far oob untags" false (Cap.tag far);
  (* bounds never move *)
  check_int "base unchanged" 65536 (Cap.base far);
  check_int "length unchanged" 4096 (Cap.length far)

let test_deref_checks () =
  let c = Cap.set_bounds (root ()) ~base:4096 ~length:64 in
  let c = Cap.restrict_perms c Perms.read_write in
  check "can load" true (Cap.can_load c);
  check "can store" true (Cap.can_store c);
  check "can load cap" true (Cap.can_load_cap c);
  let ro = Cap.clear_perm c Perms.store in
  check "ro cannot store" false (Cap.can_store ro);
  check "ro can load" true (Cap.can_load ro);
  let nocap = Cap.clear_perm c (Perms.union Perms.load_cap Perms.store_cap) in
  check "no cap-load perm" false (Cap.can_load_cap nocap);
  check "data load ok" true (Cap.can_load nocap);
  (* width checks at the end of bounds *)
  let tail = Cap.set_addr c (4096 + 60) in
  check "4-wide at end ok" true (Cap.can_load ~width:4 tail);
  check "8-wide at end fails" false (Cap.can_load ~width:8 tail)

let test_untag_blocks_deref () =
  let c = Cap.set_bounds (root ()) ~base:4096 ~length:64 in
  let u = Cap.clear_tag c in
  check "untagged cannot load" false (Cap.can_load u);
  check "untagged cannot store" false (Cap.can_store u)

let test_sealing () =
  let c = Cap.set_bounds (root ()) ~base:4096 ~length:64 in
  let s = Cap.seal c ~otype:7 in
  check "sealed tagged" true (Cap.tag s);
  check "sealed" true (Cap.is_sealed s);
  check "sealed cannot load" false (Cap.can_load s);
  check "sealed set_addr untags" false (Cap.tag (Cap.set_addr s 4100));
  check "seal twice untags" false (Cap.tag (Cap.seal s ~otype:9));
  let u = Cap.unseal s ~otype:7 in
  check "unsealed tagged" true (Cap.tag u);
  check "unsealed can load" true (Cap.can_load u);
  check "wrong otype untags" false (Cap.tag (Cap.unseal s ~otype:8));
  check "seal otype 0 untags" false (Cap.tag (Cap.seal c ~otype:0))

let test_is_subset () =
  let p = Cap.set_bounds (root ()) ~base:4096 ~length:4096 in
  let c = Cap.set_bounds p ~base:4200 ~length:100 in
  check "child subset parent" true (Cap.is_subset c p);
  check "parent not subset child" false (Cap.is_subset p c)

(* ---- Property tests ---- *)

let gen_region =
  QCheck.Gen.(
    pair (int_bound ((1 lsl 24) - 1)) (map (fun n -> n + 1) (int_bound ((1 lsl 22) - 1))))

let arb_region = QCheck.make ~print:(fun (b, l) -> Printf.sprintf "(%d,%d)" b l) gen_region

let prop_monotone_bounds =
  QCheck.Test.make ~name:"derived bounds stay within parent" ~count:500 arb_region
    (fun (base, length) ->
      let c = Cap.set_bounds (root ()) ~base ~length in
      (not (Cap.tag c))
      || (Cap.base c <= base
         && Cap.top c >= base + length
         && Cap.base c >= 0
         && Cap.top c <= 1 lsl 32))

let prop_exact_request_tags =
  QCheck.Test.make ~name:"exact requests from root always tag" ~count:500 arb_region
    (fun (base, length) ->
      let b', l' = Compress.representable ~base ~length in
      let c = Cap.set_bounds_exact (root ()) ~base:b' ~length:l' in
      Cap.tag c && Cap.base c = b' && Cap.length c = l')

let prop_set_addr_preserves_bounds =
  QCheck.Test.make ~name:"set_addr never changes bounds" ~count:500
    (QCheck.pair arb_region QCheck.small_int) (fun ((base, length), a) ->
      let c = Cap.set_bounds (root ()) ~base ~length in
      let c' = Cap.set_addr c a in
      Cap.base c' = Cap.base c && Cap.length c' = Cap.length c)

let prop_perms_only_shrink =
  QCheck.Test.make ~name:"restrict_perms only clears bits" ~count:500
    (QCheck.pair QCheck.small_int QCheck.small_int) (fun (a, b) ->
      let pa = Perms.of_int a and pb = Perms.of_int b in
      Perms.subset (Perms.inter pa pb) pa && Perms.subset (Perms.inter pa pb) pb)

let prop_rounded_alignment_exact =
  QCheck.Test.make ~name:"round_length at required alignment is exact" ~count:500
    (QCheck.make QCheck.Gen.(map (fun n -> n + 1) (int_bound ((1 lsl 26) - 1))))
    (fun len ->
      let l = Compress.round_length len in
      let a = Compress.required_alignment l in
      Compress.is_exact ~base:(3 * a) ~length:l)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cheri"
    [
      ( "perms",
        [
          Alcotest.test_case "basics" `Quick test_perms_basics;
          Alcotest.test_case "lattice" `Quick test_perms_lattice;
        ] );
      ( "compress",
        [
          Alcotest.test_case "exact small" `Quick test_exact_small;
          Alcotest.test_case "padding large" `Quick test_padding_large;
          Alcotest.test_case "window" `Quick test_window_contains_bounds;
        ] );
      ( "capability",
        [
          Alcotest.test_case "root" `Quick test_root;
          Alcotest.test_case "set_bounds" `Quick test_set_bounds_basic;
          Alcotest.test_case "escape untags" `Quick test_set_bounds_escape_untags;
          Alcotest.test_case "negative length" `Quick test_set_bounds_negative;
          Alcotest.test_case "null derivation" `Quick test_untagged_derivation;
          Alcotest.test_case "set_addr window" `Quick test_set_addr_window;
          Alcotest.test_case "deref checks" `Quick test_deref_checks;
          Alcotest.test_case "untag blocks deref" `Quick test_untag_blocks_deref;
          Alcotest.test_case "sealing" `Quick test_sealing;
          Alcotest.test_case "is_subset" `Quick test_is_subset;
        ] );
      ( "properties",
        qt
          [
            prop_monotone_bounds;
            prop_exact_request_tags;
            prop_set_addr_preserves_bounds;
            prop_perms_only_shrink;
            prop_rounded_alignment_exact;
          ] );
    ]
