(* Tagged memory and cache model tests. *)

module Mem = Tagmem.Mem
module Cache = Tagmem.Cache
module Cap = Cheri.Capability

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk () = Mem.create ~size:(1 lsl 16)

let test_data_roundtrip () =
  let m = mk () in
  Mem.write_u64 m 128 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Mem.read_u64 m 128);
  Mem.write_u8 m 200 0xab;
  check_int "u8" 0xab (Mem.read_u8 m 200)

let test_cap_roundtrip () =
  let m = mk () in
  let c = Cap.set_bounds (Cap.root ~length:(1 lsl 16)) ~base:256 ~length:64 in
  Mem.write_cap m 512 c;
  check "tag set" true (Mem.read_tag m 512);
  check "cap equal" true (Cap.equal c (Mem.read_cap m 512));
  (* the data bytes of a tagged granule hold the address *)
  Alcotest.(check int64) "address in data" (Int64.of_int (Cap.addr c)) (Mem.read_u64 m 512)

let test_untagged_store_clears () =
  let m = mk () in
  let c = Cap.set_bounds (Cap.root ~length:(1 lsl 16)) ~base:256 ~length:64 in
  Mem.write_cap m 512 c;
  Mem.write_cap m 512 (Cap.clear_tag c);
  check "tag cleared" false (Mem.read_tag m 512)

let test_tag_coherence_data_write () =
  let m = mk () in
  let c = Cap.set_bounds (Cap.root ~length:(1 lsl 16)) ~base:256 ~length:64 in
  Mem.write_cap m 512 c;
  Mem.write_u8 m 519 0xff;
  check "byte store clears tag" false (Mem.read_tag m 512);
  let loaded = Mem.read_cap m 512 in
  check "loaded untagged" false (Cap.tag loaded);
  Mem.write_cap m 512 c;
  Mem.write_u64 m 520 0L;
  check "u64 store into granule clears tag" false (Mem.read_tag m 512);
  Mem.write_cap m 512 c;
  (* a straddling write must clear both granules *)
  Mem.write_cap m 528 c;
  Mem.write_u64 m 524 0L;
  check "straddle clears first" false (Mem.read_tag m 512);
  check "straddle clears second" false (Mem.read_tag m 528)

let test_misalignment_rejected () =
  let m = mk () in
  Alcotest.check_raises "read_cap unaligned" (Invalid_argument "Mem.read_cap: unaligned")
    (fun () -> ignore (Mem.read_cap m 8))

let test_clear_tag_keeps_data () =
  let m = mk () in
  let c = Cap.set_bounds (Cap.root ~length:(1 lsl 16)) ~base:256 ~length:64 in
  Mem.write_cap m 512 c;
  Mem.clear_tag m 512;
  check "tag gone" false (Mem.read_tag m 512);
  Alcotest.(check int64) "data intact" (Int64.of_int (Cap.addr c)) (Mem.read_u64 m 512)

let test_count_and_iter () =
  let m = mk () in
  let c = Cap.set_bounds (Cap.root ~length:(1 lsl 16)) ~base:0 ~length:16 in
  Mem.write_cap m 0 c;
  Mem.write_cap m 64 c;
  Mem.write_cap m 4096 c;
  check_int "count in range" 2 (Mem.count_tags m ~lo:0 ~hi:4096);
  check_int "count all" 3 (Mem.count_tags m ~lo:0 ~hi:(Mem.size m));
  let seen = ref 0 in
  Mem.iter_granules m ~lo:0 ~hi:128 (fun _ tagged -> if tagged then incr seen);
  check_int "iter sees both" 2 !seen

let test_fill_clears_tags () =
  let m = mk () in
  let c = Cap.set_bounds (Cap.root ~length:(1 lsl 16)) ~base:0 ~length:16 in
  Mem.write_cap m 256 c;
  Mem.fill m ~lo:0 ~hi:1024 0xcc;
  check "fill cleared tag" false (Mem.read_tag m 256);
  check_int "fill wrote" 0xcc (Mem.read_u8 m 300)

let test_bounds_checked () =
  let m = mk () in
  Alcotest.check_raises "oob write"
    (Invalid_argument
       (Printf.sprintf "Mem: access [%#x,+%d) outside [0,%#x)" (Mem.size m) 1 (Mem.size m)))
    (fun () -> Mem.write_u8 m (Mem.size m) 0)

(* ---- cache ---- *)

let test_cache_hit_miss () =
  let c = Cache.create () in
  let lat1 = Cache.access c ~addr:0 ~write:false in
  let lat2 = Cache.access c ~addr:8 ~write:false in
  check "first access misses to DRAM" true (lat1 > 100);
  check "same line hits L1" true (lat2 <= 4);
  let st = Cache.stats c in
  check_int "one bus read" 1 st.Cache.bus_reads;
  check_int "one l1 hit" 1 st.Cache.l1_hits

let test_cache_l2_path () =
  let c = Cache.create ~l1_kib:1 ~l2_kib:64 () in
  ignore (Cache.access c ~addr:0 ~write:false);
  (* evict line 0 from tiny L1 by touching its conflict set *)
  ignore (Cache.access c ~addr:1024 ~write:false);
  let lat = Cache.access c ~addr:0 ~write:false in
  check "L2 hit latency" true (lat > 4 && lat < 100);
  check_int "l2 hits" 1 (Cache.stats c).Cache.l2_hits

let test_cache_writeback () =
  let c = Cache.create ~l1_kib:1 ~l2_kib:4 () in
  ignore (Cache.access c ~addr:0 ~write:true);
  (* force eviction of the dirty line from L2 *)
  ignore (Cache.access c ~addr:4096 ~write:false);
  let st = Cache.stats c in
  check_int "dirty eviction wrote back" 1 st.Cache.bus_writes

let test_cache_flush () =
  let c = Cache.create () in
  ignore (Cache.access c ~addr:0 ~write:true);
  Cache.flush c;
  let st = Cache.stats c in
  check "flush writes back dirty" true (st.Cache.bus_writes >= 1);
  let lat = Cache.access c ~addr:0 ~write:false in
  check "post-flush miss" true (lat > 100)

let test_cache_stream_counts_bus () =
  let c = Cache.create () in
  let lat = Cache.access_stream c ~addr:0 ~write:false in
  check "stream cheaper than demand miss" true (lat < 120);
  check_int "stream still counts bus" 1 (Cache.stats c).Cache.bus_reads

let test_cache_nt_no_alloc () =
  let c = Cache.create () in
  ignore (Cache.access_nt c ~addr:0 ~write:false);
  let lat = Cache.access c ~addr:0 ~write:false in
  check "nt did not install line" true (lat > 100)

let prop_tag_density =
  QCheck.Test.make ~name:"tags never exceed one per granule" ~count:100
    QCheck.(small_list (pair (int_bound 1000) bool))
    (fun writes ->
      let m = Mem.create ~size:(1 lsl 14) in
      let c = Cap.set_bounds (Cap.root ~length:(1 lsl 14)) ~base:0 ~length:16 in
      List.iter
        (fun (slot, tagged) ->
          let a = slot * 16 mod Mem.size m in
          if tagged then Mem.write_cap m a c else Mem.write_u64 m a 1L)
        writes;
      Mem.count_tags m ~lo:0 ~hi:(Mem.size m) <= Mem.size m / 16)

let () =
  Alcotest.run "tagmem"
    [
      ( "mem",
        [
          Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
          Alcotest.test_case "cap roundtrip" `Quick test_cap_roundtrip;
          Alcotest.test_case "untagged store" `Quick test_untagged_store_clears;
          Alcotest.test_case "tag coherence" `Quick test_tag_coherence_data_write;
          Alcotest.test_case "misalignment" `Quick test_misalignment_rejected;
          Alcotest.test_case "clear_tag keeps data" `Quick test_clear_tag_keeps_data;
          Alcotest.test_case "count and iter" `Quick test_count_and_iter;
          Alcotest.test_case "fill clears tags" `Quick test_fill_clears_tags;
          Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "l2 path" `Quick test_cache_l2_path;
          Alcotest.test_case "writeback" `Quick test_cache_writeback;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "stream bus" `Quick test_cache_stream_counts_bus;
          Alcotest.test_case "nt no alloc" `Quick test_cache_nt_no_alloc;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_tag_density ]);
    ]
