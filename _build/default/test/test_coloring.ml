(* Memory-coloring composition tests (§7.3). *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Coloring = Ccr.Coloring
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

let with_coloring ?(colors = 4) f =
  let m = M.create cfg in
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let rv = Revoker.create m ~strategy:Revoker.Reloaded ~core:2 () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  let col = Coloring.create m ~mrs ~colors in
  let out = ref None in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      out := Some (f col mrs ctx);
      Mrs.finish mrs ctx));
  M.run m;
  Option.get !out

let test_basic_access () =
  with_coloring (fun col _ ctx ->
      let c = Coloring.malloc col ctx 64 in
      Coloring.store col ctx c 42L;
      Alcotest.(check int64) "roundtrip" 42L (Coloring.load col ctx c))

let test_stale_access_failstops () =
  with_coloring (fun col _ ctx ->
      let a = Coloring.malloc col ctx 64 in
      Coloring.store col ctx a 1L;
      Coloring.free col ctx a;
      check "stale load fail-stops" true
        (try ignore (Coloring.load col ctx a); false
         with Coloring.Color_mismatch _ -> true);
      check "stale store fail-stops" true
        (try Coloring.store col ctx a 2L; false
         with Coloring.Color_mismatch _ -> true);
      check_int "faults counted" 2 (Coloring.faults_stopped col))

let test_immediate_reuse_different_color () =
  with_coloring (fun col _ ctx ->
      let a = Coloring.malloc col ctx 64 in
      let base = Cap.base a.Coloring.cap in
      Coloring.free col ctx a;
      (* reuse is immediate (no quarantine) and safe via the new color *)
      let b = Coloring.malloc col ctx 64 in
      check_int "same memory reused at once" base (Cap.base b.Coloring.cap);
      check "colors differ" true (a.Coloring.color <> b.Coloring.color);
      Coloring.store col ctx b 7L;
      check "old cap still dead" true
        (try ignore (Coloring.load col ctx a); false
         with Coloring.Color_mismatch _ -> true))

let test_double_free_detected_by_color () =
  with_coloring (fun col _ ctx ->
      let a = Coloring.malloc col ctx 64 in
      Coloring.free col ctx a;
      check "double free fail-stops" true
        (try Coloring.free col ctx a; false with Coloring.Color_mismatch _ -> true))

let test_exhaustion_falls_back_to_quarantine () =
  with_coloring ~colors:3 (fun col mrs ctx ->
      (* exhaust the color space on one block *)
      let rec churn () =
        let c = Coloring.malloc col ctx 64 in
        Coloring.free col ctx c;
        if Coloring.quarantine_frees col = 0 then churn ()
      in
      churn ();
      check_int "two recolor frees before quarantine" 2 (Coloring.recolor_frees col);
      check_int "then quarantine" 1 (Coloring.quarantine_frees col);
      check "block actually quarantined" true (Mrs.quarantine_bytes mrs > 0))

let test_revocation_pressure_reduction () =
  (* with k colors, only every k-th free reaches quarantine *)
  let quarantined colors =
    with_coloring ~colors (fun col _ ctx ->
        for _ = 1 to 600 do
          let c = Coloring.malloc col ctx 256 in
          Coloring.free col ctx c
        done;
        Coloring.quarantine_frees col)
  in
  let q2 = quarantined 2 and q8 = quarantined 8 in
  check "more colors, fewer quarantines" true (q8 * 3 < q2);
  check_int "2 colors: every other free" 300 q2;
  check_int "8 colors: every eighth free" 75 q8

let test_color_space_restarts_after_revocation () =
  with_coloring ~colors:2 (fun col _ ctx ->
      (* burn the block's colors so it goes through quarantine *)
      let a = Coloring.malloc col ctx 256 in
      let base = Cap.base a.Coloring.cap in
      Coloring.free col ctx a;
      let b = Coloring.malloc col ctx 256 in
      check_int "same block" base (Cap.base b.Coloring.cap);
      Coloring.free col ctx b (* exhausted -> quarantine *);
      check_int "went to quarantine" 1 (Coloring.quarantine_frees col);
      (* churn other sizes until revocation recycles it *)
      let got = ref None in
      let tries = ref 0 in
      while !got = None && !tries < 20_000 do
        incr tries;
        let c = Coloring.malloc col ctx 256 in
        if Cap.base c.Coloring.cap = base then got := Some c
        else Coloring.free col ctx c
      done;
      match !got with
      | None -> Alcotest.fail "block never came back"
      | Some c ->
          check_int "color space restarted" 0 c.Coloring.color;
          Coloring.store col ctx c 1L)

let () =
  Alcotest.run "coloring"
    [
      ( "coloring",
        [
          Alcotest.test_case "basic access" `Quick test_basic_access;
          Alcotest.test_case "stale fail-stop" `Quick test_stale_access_failstops;
          Alcotest.test_case "immediate reuse" `Quick test_immediate_reuse_different_color;
          Alcotest.test_case "double free" `Quick test_double_free_detected_by_color;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion_falls_back_to_quarantine;
          Alcotest.test_case "pressure reduction" `Quick test_revocation_pressure_reduction;
          Alcotest.test_case "restart after revocation" `Quick
            test_color_space_restarts_after_revocation;
        ] );
    ]
