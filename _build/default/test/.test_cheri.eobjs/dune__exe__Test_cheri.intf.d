test/test_cheri.mli:
