test/test_ccr.ml: Alcotest Alloc Ccr Cheri Hashtbl Kernel List Option Printf QCheck QCheck_alcotest Sim Vm
