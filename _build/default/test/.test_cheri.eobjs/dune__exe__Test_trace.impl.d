test/test_trace.ml: Alcotest Alloc Buffer Ccr Cheri Format Hashtbl List Option Sim String
