test/test_integration.ml: Alcotest Alloc Ccr Cheri Int64 Kernel List Option Printf Sim String
