test/test_jemalloc.ml: Alcotest Alloc Array Cheri List Option QCheck QCheck_alcotest Sim
