test/test_alloc.ml: Alcotest Alloc Cheri List Option QCheck QCheck_alcotest Sim
