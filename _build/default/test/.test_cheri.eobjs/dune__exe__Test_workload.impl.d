test/test_workload.ml: Alcotest Array Ccr Cheri List Option QCheck QCheck_alcotest Sim Workload
