test/test_tagmem.mli:
