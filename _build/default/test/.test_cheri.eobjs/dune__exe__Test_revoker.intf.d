test/test_revoker.mli:
