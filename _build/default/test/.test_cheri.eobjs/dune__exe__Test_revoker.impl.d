test/test_revoker.ml: Alcotest Alloc Ccr Cheri Kernel List Printf Sim Tagmem
