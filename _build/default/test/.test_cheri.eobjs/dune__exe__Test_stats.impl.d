test/test_stats.ml: Alcotest Buffer Format Gen List QCheck QCheck_alcotest Stats String
