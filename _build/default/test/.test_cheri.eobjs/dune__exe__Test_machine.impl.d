test/test_machine.ml: Alcotest Cheri Int64 Option Sim Vm
