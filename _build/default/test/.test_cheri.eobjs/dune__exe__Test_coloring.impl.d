test/test_coloring.ml: Alcotest Alloc Ccr Cheri Option Sim
