test/test_tagmem.ml: Alcotest Cheri Int64 List Printf QCheck QCheck_alcotest Tagmem
