test/test_jemalloc.mli:
