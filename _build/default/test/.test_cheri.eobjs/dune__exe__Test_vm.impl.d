test/test_vm.ml: Alcotest List QCheck QCheck_alcotest Tagmem Vm
