test/test_cheri.ml: Alcotest Cheri List Printf QCheck QCheck_alcotest
