test/test_ccr.mli:
