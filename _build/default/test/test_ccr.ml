(* Core revocation machinery tests: the shadow bitmap, the epoch counter
   protocol, page sweeping, policy, the mrs shim, kernel hoards, and the
   munmap quarantine. *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Allocator = Alloc.Allocator
module Revmap = Ccr.Revmap
module Epoch = Ccr.Epoch
module Sweep = Ccr.Sweep
module Policy = Ccr.Policy
module Mrs = Ccr.Mrs
module Revoker = Ccr.Revoker
module Layout = Vm.Layout

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

let with_machine f =
  let m = M.create cfg in
  let out = ref None in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx -> out := Some (f m ctx)));
  M.run m;
  Option.get !out

let heap_base m = (M.layout m).Layout.heap_base

let map_heap m ctx pages =
  M.map ctx ~vaddr:(heap_base m) ~len:(pages * 4096) ~writable:true;
  Cap.set_bounds (Cap.root ~length:(1 lsl 32)) ~base:(heap_base m)
    ~length:(pages * 4096)

(* ---- revmap ---- *)

let test_revmap_paint_test_clear () =
  with_machine (fun m ctx ->
      let _heap = map_heap m ctx 4 in
      let rm = Revmap.create m in
      let a = heap_base m + 256 in
      check "clean initially" false (Revmap.test rm ctx a);
      Revmap.paint rm ctx ~addr:a ~size:64;
      check "painted" true (Revmap.test rm ctx a);
      check "painted end" true (Revmap.test rm ctx (a + 48));
      check "not beyond" false (Revmap.test rm ctx (a + 64));
      check "not before" false (Revmap.test rm ctx (a - 16));
      check_int "bit count" 4 (Revmap.set_bits rm);
      Revmap.clear rm ctx ~addr:a ~size:64;
      check "cleared" false (Revmap.test rm ctx a);
      check_int "bits zero" 0 (Revmap.set_bits rm))

let test_revmap_word_boundaries () =
  with_machine (fun m ctx ->
      let _ = map_heap m ctx 4 in
      let rm = Revmap.create m in
      (* a range spanning a 64-bit shadow word boundary: granules 60..70 *)
      let a = heap_base m + (60 * 16) in
      Revmap.paint rm ctx ~addr:a ~size:(11 * 16);
      for g = 58 to 72 do
        let inside = g >= 60 && g < 71 in
        check (Printf.sprintf "granule %d" g) inside
          (Revmap.test rm ctx (heap_base m + (g * 16)))
      done;
      check_int "bits" 11 (Revmap.set_bits rm))

let test_revmap_unaligned_rejected () =
  with_machine (fun m ctx ->
      let _ = map_heap m ctx 1 in
      let rm = Revmap.create m in
      check "unaligned raises" true
        (try Revmap.paint rm ctx ~addr:(heap_base m + 3) ~size:16; false
         with Invalid_argument _ -> true);
      check "outside heap raises" true
        (try Revmap.paint rm ctx ~addr:16 ~size:16; false
         with Invalid_argument _ -> true))

let test_revmap_revoke_cap () =
  with_machine (fun m ctx ->
      let heap = map_heap m ctx 4 in
      let rm = Revmap.create m in
      let victim = Cap.set_bounds heap ~base:(heap_base m + 1024) ~length:64 in
      let bystander = Cap.set_bounds heap ~base:(heap_base m + 2048) ~length:64 in
      Revmap.paint rm ctx ~addr:(Cap.base victim) ~size:64;
      check "victim untagged" false (Cap.tag (Revmap.revoke_cap rm ctx victim));
      check "bystander kept" true (Cap.tag (Revmap.revoke_cap rm ctx bystander));
      (* revocation tests the BASE, even when the cursor wandered *)
      let wandered = Cap.incr_addr victim 48 in
      check "wandered victim still revoked" false
        (Cap.tag (Revmap.revoke_cap rm ctx wandered));
      check "host probe agrees" true (Revmap.test_host rm (Cap.base victim)))

let prop_revmap_paint_clear_roundtrip =
  QCheck.Test.make ~name:"paint;clear leaves the bitmap empty" ~count:50
    QCheck.(small_list (pair (int_bound 200) (int_bound 30)))
    (fun ranges ->
      with_machine (fun m ctx ->
          let _ = map_heap m ctx 2 in
          let rm = Revmap.create m in
          let norm =
            List.map (fun (g, l) -> (heap_base m + (g * 16), 16 * (l + 1))) ranges
          in
          List.iter (fun (addr, size) -> Revmap.paint rm ctx ~addr ~size) norm;
          List.iter (fun (addr, size) -> Revmap.clear rm ctx ~addr ~size) norm;
          Revmap.set_bits rm = 0))

(* ---- epoch ---- *)

let test_epoch_protocol () =
  with_machine (fun _ ctx ->
      let e = Epoch.create () in
      check_int "starts at zero" 0 (Epoch.counter e);
      check "not in progress" false (Epoch.in_progress e);
      Epoch.begin_revocation e ctx;
      check "odd during" true (Epoch.in_progress e);
      check "begin twice raises" true
        (try Epoch.begin_revocation e ctx; false with Invalid_argument _ -> true);
      Epoch.end_revocation e ctx;
      check_int "two after one pass" 2 (Epoch.counter e);
      (* §2.2.3: painted at even e -> clean at e+2; odd -> e+3 *)
      check_int "even target" 2 (Epoch.clean_target 0);
      check_int "odd target" 4 (Epoch.clean_target 1);
      check "clean for 0" true (Epoch.is_clean e ~painted_at:0);
      check "not clean for 1" false (Epoch.is_clean e ~painted_at:1);
      check "not clean for 2" false (Epoch.is_clean e ~painted_at:2);
      Epoch.begin_revocation e ctx;
      Epoch.end_revocation e ctx;
      check "clean for 1 after second pass" true (Epoch.is_clean e ~painted_at:1))

(* ---- sweep ---- *)

let test_sweep_page_revokes () =
  with_machine (fun m ctx ->
      let heap = map_heap m ctx 4 in
      let rm = Revmap.create m in
      let victim = Cap.set_bounds heap ~base:(heap_base m + 4096) ~length:64 in
      let keeper = Cap.set_bounds heap ~base:(heap_base m + 8192) ~length:64 in
      (* plant capabilities in page 0 of the heap *)
      let slot n = Cap.set_addr heap (heap_base m + (n * 16)) in
      M.store_cap ctx (slot 0) victim;
      M.store_cap ctx (slot 1) keeper;
      M.store_cap ctx (slot 2) victim;
      Revmap.paint rm ctx ~addr:(Cap.base victim) ~size:64;
      let pte =
        match Vm.Aspace.translate (M.aspace m) (heap_base m) with
        | Some (_, pte) -> pte
        | None -> Alcotest.fail "unmapped"
      in
      let st = Sweep.sweep_page ctx rm ~pte in
      check_int "granules" 256 st.Sweep.granules;
      check_int "tagged seen" 3 st.Sweep.tagged;
      check_int "revoked" 2 st.Sweep.revoked;
      check "victim slot untagged" false (Cap.tag (M.load_cap ctx (slot 0)));
      check "keeper survives" true (Cap.tag (M.load_cap ctx (slot 1)));
      (* idempotent *)
      let st2 = Sweep.sweep_page ctx rm ~pte in
      check_int "second sweep revokes nothing" 0 st2.Sweep.revoked)

let test_sweep_regfile_and_hoard () =
  with_machine (fun m ctx ->
      let heap = map_heap m ctx 4 in
      let rm = Revmap.create m in
      let victim = Cap.set_bounds heap ~base:(heap_base m + 4096) ~length:64 in
      let keeper = Cap.set_bounds heap ~base:(heap_base m + 8192) ~length:64 in
      Revmap.paint rm ctx ~addr:(Cap.base victim) ~size:64;
      let regs = Sim.Regfile.create () in
      Sim.Regfile.set regs 0 victim;
      Sim.Regfile.set regs 1 keeper;
      check_int "one revoked in regs" 1 (Sweep.scan_regfile ctx rm regs);
      check "reg untagged" false (Cap.tag (Sim.Regfile.get regs 0));
      check "reg kept" true (Cap.tag (Sim.Regfile.get regs 1));
      let h = Kernel.Hoard.create () in
      let hv = Kernel.Hoard.register h ctx victim in
      let hk = Kernel.Hoard.register h ctx keeper in
      check_int "one revoked in hoard" 1 (Sweep.scan_hoard ctx rm h);
      check "hoard victim untagged" false (Cap.tag (Kernel.Hoard.retrieve h ctx hv));
      check "hoard keeper kept" true (Cap.tag (Kernel.Hoard.retrieve h ctx hk)))

(* ---- policy ---- *)

let test_policy_thresholds () =
  let p = Policy.default in
  check "below min: no revoke" false
    (Policy.should_revoke p ~live:(1 lsl 20) ~quarantine:(p.Policy.min_quarantine - 1));
  check "above min and fraction" true
    (Policy.should_revoke p ~live:(1 lsl 18) ~quarantine:(p.Policy.min_quarantine + 1));
  (* quarantine must exceed 1/4 of total = 1/3 of live *)
  let live = 16 lsl 20 in
  check "at fraction boundary" false (Policy.should_revoke p ~live ~quarantine:(live / 3 - 100_000));
  check "above fraction" true
    (Policy.should_revoke p ~live ~quarantine:(live / 2));
  check "block only when far over" false (Policy.should_block p ~live ~quarantine:(live / 3));
  check "block when quarantine exceeds live" true
    (Policy.should_block p ~live ~quarantine:(live * 11 / 10))

(* ---- mrs + revoker end-to-end (single strategy here; the full
   strategy matrix lives in test_revoker.ml) ---- *)

let mk_rt strategy =
  let m = M.create cfg in
  let alloc = Alloc.Backend.snmalloc (Allocator.create m) in
  let rv = Revoker.create m ~strategy ~core:2 () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  (m, alloc, rv, mrs)

let test_mrs_quarantine_delays_reuse () =
  let m, _alloc, rv, mrs = mk_rt Revoker.Reloaded in
  let ok = ref false in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let a = Mrs.malloc mrs ctx 64 in
      let base = Cap.base a in
      Mrs.free mrs ctx a;
      (* immediately after free, the same address must NOT come back *)
      let b = Mrs.malloc mrs ctx 64 in
      ok := Cap.base b <> base;
      Mrs.finish mrs ctx));
  M.run m;
  check "no immediate reuse" true !ok;
  check_int "no revocation for tiny quarantine" 0 (Revoker.revocation_count rv)

let test_mrs_epoch_protocol_respected () =
  let m, _alloc, rv, mrs = mk_rt Revoker.Reloaded in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      (* free enough to trigger revocations and observe reuse only after
         a full epoch *)
      let freed = Hashtbl.create 64 in
      for i = 1 to 3000 do
        let c = Mrs.malloc mrs ctx 256 in
        let painted_at = Epoch.counter (Revoker.epoch rv) in
        Mrs.free mrs ctx c;
        Hashtbl.replace freed (Cap.base c) painted_at;
        if i mod 100 = 0 then M.yield ctx
      done;
      Mrs.finish mrs ctx));
  (* reuse check happens via allocator internals: a base handed out again
     while its paint epoch is not clean would violate the protocol; the
     mrs on_clean path runs through Revmap.clear which asserts ranges, and
     double-accounting would trip the outstanding counter; reaching here
     with revocations > 0 exercises the full cycle *)
  M.run m;
  check "revocations happened" true (Revoker.revocation_count rv > 0);
  (* only the trailing, never-triggered buffer may remain: everything
     enqueued must have been dequarantined *)
  check "no batch left undrained" true
    (Mrs.quarantine_bytes mrs <= 2 * Policy.default.Policy.min_quarantine)

let test_mrs_double_free_detected () =
  let m, _alloc, _rv, mrs = mk_rt Revoker.Paint_sync in
  let caught = ref false in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let a = Mrs.malloc mrs ctx 64 in
      Mrs.free mrs ctx a;
      (try Mrs.free mrs ctx a with Invalid_argument _ -> caught := true);
      Mrs.finish mrs ctx));
  M.run m;
  check "double free detected" true !caught

let test_mrs_stats () =
  let m, _alloc, _rv, mrs = mk_rt Revoker.Cherivoke in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      for _ = 1 to 2000 do
        let c = Mrs.malloc mrs ctx 256 in
        Mrs.free mrs ctx c
      done;
      Mrs.finish mrs ctx));
  M.run m;
  let st = Mrs.stats mrs in
  check "sum freed counted" true (st.Mrs.sum_freed_bytes >= 2000 * 256);
  check "live samples per trigger" true
    (List.length st.Mrs.live_samples >= st.Mrs.revocations)

(* ---- kernel ---- *)

let test_hoard_basics () =
  with_machine (fun m ctx ->
      ignore m;
      let h = Kernel.Hoard.create () in
      let c = Cap.root ~length:4096 in
      let k = Kernel.Hoard.register h ctx c in
      check_int "size" 1 (Kernel.Hoard.size h);
      check "retrieve" true (Cap.equal c (Kernel.Hoard.retrieve h ctx k));
      Kernel.Hoard.deregister h ctx k;
      check_int "empty" 0 (Kernel.Hoard.size h);
      check "missing raises" true
        (try ignore (Kernel.Hoard.retrieve h ctx k); false with Not_found -> true))

let test_syscall_drain_state () =
  let m = M.create cfg in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      Kernel.Syscall.perform ~profile:Kernel.Syscall.light_profile ctx));
  M.run m;
  check "completed" true true

(* ---- munmap quarantine ---- *)

let test_munmap_quarantine_cycle () =
  let m, _alloc, rv, mrs = mk_rt Revoker.Reloaded in
  let released = ref (-1) in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let l = M.layout m in
      let base = l.Layout.heap_base + (256 * 4096) in
      M.map ctx ~vaddr:base ~len:(4 * 4096) ~writable:true;
      let resv = Vm.Reservation.make ~base ~length:(4 * 4096) in
      Vm.Reservation.unmap_part resv ~off:0 ~len:(4 * 4096);
      let mq = Ccr.Munmap.create rv in
      Ccr.Munmap.quarantine mq ctx resv;
      check_int "pending" 1 (Ccr.Munmap.pending mq);
      check_int "not clean yet" 0 (Ccr.Munmap.poll mq ctx);
      (* force revocations by churning the mrs heap *)
      for _ = 1 to 4000 do
        let c = Mrs.malloc mrs ctx 256 in
        Mrs.free mrs ctx c
      done;
      Epoch.wait_clean (Revoker.epoch rv) ctx ~painted_at:0;
      released := Ccr.Munmap.poll mq ctx;
      check "reservation released" true
        (Vm.Reservation.state resv = Vm.Reservation.Released);
      Mrs.finish mrs ctx));
  M.run m;
  check_int "one released" 1 !released

let () =
  Alcotest.run "ccr"
    [
      ( "revmap",
        [
          Alcotest.test_case "paint/test/clear" `Quick test_revmap_paint_test_clear;
          Alcotest.test_case "word boundaries" `Quick test_revmap_word_boundaries;
          Alcotest.test_case "unaligned" `Quick test_revmap_unaligned_rejected;
          Alcotest.test_case "revoke_cap" `Quick test_revmap_revoke_cap;
        ] );
      ("epoch", [ Alcotest.test_case "protocol" `Quick test_epoch_protocol ]);
      ( "sweep",
        [
          Alcotest.test_case "page" `Quick test_sweep_page_revokes;
          Alcotest.test_case "regfile/hoard" `Quick test_sweep_regfile_and_hoard;
        ] );
      ("policy", [ Alcotest.test_case "thresholds" `Quick test_policy_thresholds ]);
      ( "mrs",
        [
          Alcotest.test_case "quarantine delays reuse" `Quick test_mrs_quarantine_delays_reuse;
          Alcotest.test_case "epoch protocol" `Quick test_mrs_epoch_protocol_respected;
          Alcotest.test_case "double free" `Quick test_mrs_double_free_detected;
          Alcotest.test_case "stats" `Quick test_mrs_stats;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "hoard" `Quick test_hoard_basics;
          Alcotest.test_case "syscall" `Quick test_syscall_drain_state;
        ] );
      ("munmap", [ Alcotest.test_case "quarantine cycle" `Quick test_munmap_quarantine_cycle ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_revmap_paint_clear_roundtrip ] );
    ]
