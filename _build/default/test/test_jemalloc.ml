(* Jemalloc-flavoured allocator tests (runs, bins, retirement), plus a
   differential property test against the snmalloc-style allocator. *)

module M = Sim.Machine
module Cap = Cheri.Capability
module J = Alloc.Jemalloc
module A = Alloc.Allocator

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = { M.default_config with heap_bytes = 8 lsl 20; mem_bytes = 32 lsl 20 }

let with_j f =
  let m = M.create cfg in
  let j = J.create m in
  let out = ref None in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx -> out := Some (f j ctx)));
  M.run m;
  Option.get !out

let test_basic () =
  with_j (fun j ctx ->
      let c = J.malloc j ctx 100 in
      check "tagged" true (Cap.tag c);
      check "covers" true (Cap.length c >= 100);
      M.store_u64 ctx c 9L;
      Alcotest.(check int64) "rw" 9L (M.load_u64 ctx c);
      J.free j ctx c;
      J.check_invariants j)

let test_same_run_locality () =
  with_j (fun j ctx ->
      (* same-class allocations pack into one 16 KiB run *)
      let a = J.malloc j ctx 128 in
      let b = J.malloc j ctx 128 in
      check "same run" true (abs (Cap.base a - Cap.base b) < 16 * 1024);
      check_int "one run" 1 (J.run_count j);
      J.check_invariants j)

let test_address_ordered_reuse () =
  with_j (fun j ctx ->
      (* fill beyond one run, free every other region (keeping the runs
         alive), and confirm reuse prefers the lowest freed address *)
      let caps = Array.init 200 (fun _ -> J.malloc j ctx 128) in
      check "several runs" true (J.run_count j >= 2);
      let lowest_freed = ref max_int in
      Array.iteri
        (fun i c ->
          if i mod 2 = 0 then begin
            lowest_freed := min !lowest_freed (Cap.base c);
            J.free j ctx c
          end)
        caps;
      let c' = J.malloc j ctx 128 in
      check_int "lowest freed address reused first" !lowest_freed (Cap.base c');
      J.check_invariants j)

let test_empty_run_retired () =
  with_j (fun j ctx ->
      let caps = Array.init 8 (fun _ -> J.malloc j ctx 128) in
      check_int "one run live" 1 (J.run_count j);
      Array.iter (fun c -> J.free j ctx c) caps;
      check_int "run retired when empty" 0 (J.run_count j);
      (* the retired run is recycled for a different class *)
      let big = J.malloc j ctx 1024 in
      check "recycled" true (Cap.tag big);
      J.check_invariants j)

let test_full_run_leaves_bin () =
  with_j (fun j ctx ->
      (* 16 KiB run of 8 KiB regions: two allocations fill it *)
      let a = J.malloc j ctx 8192 in
      let b = J.malloc j ctx 8192 in
      let c = J.malloc j ctx 8192 in
      (* third must come from a second run *)
      check "new run" true (J.run_count j = 2);
      J.free j ctx a;
      J.free j ctx b;
      J.free j ctx c;
      check_int "all retired" 0 (J.run_count j))

let test_withdraw_release_quarantine_surface () =
  with_j (fun j ctx ->
      let a = J.malloc j ctx 256 in
      let base = Cap.base a in
      let size = J.withdraw j ctx a in
      (* withdrawn region is NOT reusable *)
      let b = J.malloc j ctx 256 in
      check "not reused while quarantined" true (Cap.base b <> base);
      J.release_range j ctx ~addr:base ~size;
      let c = J.malloc j ctx 256 in
      check_int "reused after release (address-ordered)" base (Cap.base c);
      J.check_invariants j)

let test_double_free_detected () =
  with_j (fun j ctx ->
      let a = J.malloc j ctx 64 in
      J.free j ctx a;
      check "double free" true
        (try J.free j ctx a; false with Invalid_argument _ -> true))

let test_large_path () =
  with_j (fun j ctx ->
      let big = J.malloc j ctx (100 * 1024) in
      check "tagged" true (Cap.tag big);
      let base = Cap.base big in
      J.free j ctx big;
      let again = J.malloc j ctx (100 * 1024) in
      check_int "large reuse" base (Cap.base again))

let test_scrub_on_reuse () =
  with_j (fun j ctx ->
      let a = J.malloc j ctx 128 in
      M.store_u64 ctx a 77L;
      J.free j ctx a;
      let b = J.malloc j ctx 128 in
      Alcotest.(check int64) "zeroed" 0L (M.load_u64 ctx b))

(* Differential property: both allocators satisfy the same observable
   contract over random alloc/free traces. *)
let prop_differential =
  QCheck.Test.make ~name:"jemalloc and snmalloc agree on the allocator contract"
    ~count:15
    QCheck.(pair small_int (small_list (pair (int_bound 2000) bool)))
    (fun (seed, trace) ->
      let m = M.create cfg in
      let j = J.create m in
      let out = ref true in
      ignore
        (M.spawn m ~name:"app" ~core:3 (fun ctx ->
             let m2 = M.create cfg in
             ignore m2;
             let rng = Sim.Prng.create ~seed in
             let live = ref [] in
             List.iter
               (fun (sz, do_free) ->
                 if do_free && !live <> [] then begin
                   let i = Sim.Prng.int rng (List.length !live) in
                   let c = List.nth !live i in
                   live := List.filteri (fun k _ -> k <> i) !live;
                   J.free j ctx c
                 end
                 else begin
                   let c = J.malloc j ctx (sz + 1) in
                   (* no overlap with anything live *)
                   List.iter
                     (fun d ->
                       if not (Cap.top c <= Cap.base d || Cap.top d <= Cap.base c)
                       then out := false)
                     !live;
                   live := c :: !live
                 end)
               trace;
             J.check_invariants j;
             let expect =
               List.fold_left (fun a c -> a + Cap.length c) 0 !live
             in
             if J.live_bytes j <> expect then out := false));
      M.run m;
      !out)

let () =
  Alcotest.run "jemalloc"
    [
      ( "jemalloc",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "run locality" `Quick test_same_run_locality;
          Alcotest.test_case "address-ordered reuse" `Quick test_address_ordered_reuse;
          Alcotest.test_case "empty run retired" `Quick test_empty_run_retired;
          Alcotest.test_case "full run leaves bin" `Quick test_full_run_leaves_bin;
          Alcotest.test_case "quarantine surface" `Quick
            test_withdraw_release_quarantine_surface;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "large path" `Quick test_large_path;
          Alcotest.test_case "scrub on reuse" `Quick test_scrub_on_reuse;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_differential ]);
    ]
