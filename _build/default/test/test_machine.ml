(* Simulated machine tests: scheduling, time accounting, synchronization,
   stop-the-world, memory operations, the load barrier, traps. *)

module M = Sim.Machine
module Cost = Sim.Cost
module Regfile = Sim.Regfile
module Prng = Sim.Prng
module Cap = Cheri.Capability
module Perms = Cheri.Perms

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg =
  { M.default_config with heap_bytes = 1 lsl 20; mem_bytes = 8 * (1 lsl 20) }

let mk () = M.create cfg

let heap_cap m =
  let l = M.layout m in
  Cap.restrict_perms
    (Cap.set_bounds (Cap.root ~length:(1 lsl 32)) ~base:l.Vm.Layout.heap_base
       ~length:(l.Vm.Layout.heap_limit - l.Vm.Layout.heap_base))
    Perms.all

(* ---- prng ---- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:5 and b = Prng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done;
  let c = Prng.create ~seed:6 in
  check "different seed differs" true (Prng.next a <> Prng.next c)

let test_prng_ranges () =
  let r = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Prng.int r 10 in
    check "int in range" true (x >= 0 && x < 10);
    let f = Prng.float r 2.0 in
    check "float in range" true (f >= 0.0 && f < 2.0);
    let e = Prng.exponential r ~mean:5.0 in
    check "exp nonneg" true (e >= 0.0);
    let p = Prng.pareto r ~scale:3.0 ~shape:1.5 in
    check "pareto >= scale" true (p >= 3.0)
  done

(* ---- basic scheduling and time ---- *)

let test_charge_advances_clock () =
  let m = mk () in
  let final = ref 0 in
  let th =
    M.spawn m ~name:"a" ~core:0 (fun ctx ->
        M.charge ctx 12345;
        final := M.now ctx)
  in
  M.run m;
  check_int "clock" 12345 !final;
  check_int "thread cpu" 12345 (M.thread_cpu_cycles th)

let test_two_cores_independent () =
  let m = mk () in
  let a_end = ref 0 and b_end = ref 0 in
  ignore (M.spawn m ~name:"a" ~core:0 (fun ctx -> M.charge ctx 100; a_end := M.now ctx));
  ignore (M.spawn m ~name:"b" ~core:1 (fun ctx -> M.charge ctx 999; b_end := M.now ctx));
  M.run m;
  check_int "a" 100 !a_end;
  check_int "b" 999 !b_end;
  check_int "global time is max" 999 (M.global_time m)

let test_same_core_context_switch () =
  let m = mk () in
  ignore (M.spawn m ~name:"a" ~core:0 (fun ctx -> M.charge ctx 100; M.yield ctx; M.charge ctx 100));
  ignore (M.spawn m ~name:"b" ~core:0 (fun ctx -> M.charge ctx 100));
  M.run m;
  let t = M.totals m in
  check "context switches happened" true (t.M.context_switches >= 1);
  (* both threads' work plus switch costs on one core *)
  check "core clock >= work" true (M.core_clock m 0 >= 300)

let test_sleep_ordering () =
  let m = mk () in
  let order = ref [] in
  ignore (M.spawn m ~name:"late" ~core:0 (fun ctx ->
      M.sleep ctx 10_000;
      order := "late" :: !order));
  ignore (M.spawn m ~name:"early" ~core:1 (fun ctx ->
      M.sleep ctx 100;
      order := "early" :: !order));
  M.run m;
  Alcotest.(check (list string)) "wake order" [ "late"; "early" ] !order

let test_condvar_wakeup_time () =
  let m = mk () in
  let woke_at = ref 0 in
  let cv = M.condvar () in
  ignore (M.spawn m ~name:"waiter" ~core:0 (fun ctx ->
      M.wait ctx cv;
      woke_at := M.now ctx));
  ignore (M.spawn m ~name:"signaler" ~core:1 (fun ctx ->
      M.charge ctx 5000;
      M.broadcast ctx cv));
  M.run m;
  check "woke no earlier than signal" true (!woke_at >= 5000)

let test_deadlock_detection () =
  let m = mk () in
  let cv = M.condvar () in
  ignore (M.spawn m ~name:"stuck" ~core:0 (fun ctx -> M.wait ctx cv));
  check "deadlock raised" true
    (try M.run m; false with M.Deadlock _ -> true)

let test_quantum_preemption_fairness () =
  let m = mk () in
  let a_done = ref 0 and b_done = ref 0 in
  (* two busy loops on one core; safe_point preempts at quantum expiry *)
  ignore (M.spawn m ~name:"a" ~core:0 (fun ctx ->
      for _ = 1 to 100 do M.charge ctx 1000; M.safe_point ctx done;
      a_done := M.now ctx));
  ignore (M.spawn m ~name:"b" ~core:0 (fun ctx ->
      for _ = 1 to 100 do M.charge ctx 1000; M.safe_point ctx done;
      b_done := M.now ctx));
  M.run m;
  (* they interleave: both finish near the end, neither runs to completion
     before the other starts *)
  let diff = abs (!a_done - !b_done) in
  check "interleaved finish" true (diff < 50_000)

(* ---- stop-the-world ---- *)

let test_stw_pause_accounting () =
  let m = mk () in
  let app_end = ref 0 in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      for _ = 1 to 1000 do M.charge ctx 1000; M.safe_point ctx done;
      app_end := M.now ctx));
  let rep = ref None in
  ignore (M.spawn m ~name:"rev" ~core:2 ~user:false (fun ctx ->
      M.sleep ctx 200_000;
      let (), r = M.stop_the_world ctx (fun () -> M.charge ctx 500_000) in
      rep := Some r));
  M.run m;
  (match !rep with
  | None -> Alcotest.fail "no stw"
  | Some r ->
      check "stopped after requested" true (r.M.stopped_at >= r.M.requested_at);
      check "released after stop + work" true
        (r.M.released_at >= r.M.stopped_at + 500_000));
  check "app delayed by pause" true (!app_end >= 1_000_000 + 500_000)

let test_stw_idle_thread_parked_in_place () =
  let m = mk () in
  let waiter_woke = ref 0 in
  let cv = M.condvar () in
  ignore (M.spawn m ~name:"idle" ~core:3 (fun ctx ->
      M.wait ctx cv;
      waiter_woke := M.now ctx));
  ignore (M.spawn m ~name:"rev" ~core:2 ~user:false (fun ctx ->
      let (), _ = M.stop_the_world ctx (fun () -> M.charge ctx 1000) in
      (* waking a thread that was parked while waiting must still work *)
      M.broadcast ctx cv));
  M.run m;
  check "woken after release" true (!waiter_woke > 0)

let test_stw_syscall_drain_cost () =
  let m = mk () in
  let rep = ref None in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      M.enter_syscall ctx ~drain:300_000;
      M.sleep ctx 1_000_000;
      M.exit_syscall ctx));
  ignore (M.spawn m ~name:"rev" ~core:2 ~user:false (fun ctx ->
      M.sleep ctx 10_000;
      let (), r = M.stop_the_world ctx (fun () -> ()) in
      rep := Some r));
  M.run m;
  match !rep with
  | None -> Alcotest.fail "no stw"
  | Some r ->
      check "drain delays stop" true (r.M.stopped_at - r.M.requested_at >= 300_000)

let test_stw_user_thread_cannot_initiate () =
  let m = mk () in
  let raised = ref false in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      (try ignore (M.stop_the_world ctx (fun () -> ()))
       with Invalid_argument _ -> raised := true)));
  M.run m;
  check "rejected" true !raised

(* ---- memory operations ---- *)

let with_app f =
  let m = mk () in
  let result = ref None in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let l = M.layout m in
      M.map ctx ~vaddr:l.Vm.Layout.heap_base ~len:(16 * 4096) ~writable:true;
      result := Some (f m ctx (heap_cap m))));
  M.run m;
  Option.get !result

let test_load_store_roundtrip () =
  let v = with_app (fun _ ctx heap ->
      let c = Cap.set_bounds heap ~base:(Cap.base heap + 64) ~length:64 in
      M.store_u64 ctx c 0xdeadbeefL;
      M.load_u64 ctx c)
  in
  Alcotest.(check int64) "roundtrip" 0xdeadbeefL v

let test_cap_store_load_roundtrip () =
  let ok = with_app (fun _ ctx heap ->
      let slot = Cap.set_bounds heap ~base:(Cap.base heap + 128) ~length:16 in
      let v = Cap.set_bounds heap ~base:(Cap.base heap + 4096) ~length:256 in
      M.store_cap ctx slot v;
      Cap.equal v (M.load_cap ctx slot))
  in
  check "cap roundtrip" true ok

let test_cap_store_sets_dirty () =
  let dirty = with_app (fun m ctx heap ->
      let slot = Cap.set_bounds heap ~base:(Cap.base heap + 128) ~length:16 in
      let before =
        match Vm.Aspace.translate (M.aspace m) (Cap.base slot) with
        | Some (_, pte) -> pte.Vm.Pte.cap_dirty
        | None -> true
      in
      M.store_cap ctx slot (Cap.set_bounds heap ~base:(Cap.base heap) ~length:16);
      let after =
        match Vm.Aspace.translate (M.aspace m) (Cap.base slot) with
        | Some (_, pte) -> pte.Vm.Pte.cap_dirty
        | None -> false
      in
      (before, after))
  in
  check "clean before" false (fst dirty);
  check "dirty after" true (snd dirty)

let test_untagged_store_no_dirty () =
  let dirty = with_app (fun m ctx heap ->
      let slot = Cap.set_bounds heap ~base:(Cap.base heap + 128) ~length:16 in
      M.store_cap ctx slot (Cap.clear_tag heap);
      match Vm.Aspace.translate (M.aspace m) (Cap.base slot) with
      | Some (_, pte) -> pte.Vm.Pte.cap_dirty
      | None -> true)
  in
  check "untagged store leaves page clean" false dirty

let test_capability_fault_on_oob () =
  let raised = with_app (fun _ ctx heap ->
      let c = Cap.set_bounds heap ~base:(Cap.base heap + 64) ~length:16 in
      let past = Cap.incr_addr c 16 in
      try ignore (M.load_u64 ctx past); false
      with M.Capability_fault _ -> true)
  in
  check "oob load faults" true raised

let test_capability_fault_untagged () =
  let raised = with_app (fun _ ctx heap ->
      let c = Cap.clear_tag (Cap.set_bounds heap ~base:(Cap.base heap + 64) ~length:16) in
      try ignore (M.load_u64 ctx c); false
      with M.Capability_fault _ -> true)
  in
  check "untagged load faults" true raised

let test_page_fault_unmapped () =
  let m = mk () in
  let raised = ref false in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let l = M.layout m in
      let c =
        Cap.set_bounds (Cap.root ~length:(1 lsl 32))
          ~base:(l.Vm.Layout.heap_base + (100 * 4096)) ~length:64
      in
      try ignore (M.load_u64 ctx c) with M.Page_fault _ -> raised := true));
  M.run m;
  check "page fault" true raised.contents

let test_store_without_capstore_page () =
  let raised = with_app (fun m ctx heap ->
      let slot = Cap.set_bounds heap ~base:(Cap.base heap + 128) ~length:16 in
      (match Vm.Aspace.translate (M.aspace m) (Cap.base slot) with
      | Some (_, pte) -> pte.Vm.Pte.cap_store <- false
      | None -> ());
      try M.store_cap ctx slot heap; false with M.Capability_fault _ -> true)
  in
  check "cap store to protected page faults" true raised

let test_zero_clears () =
  let ok = with_app (fun m ctx heap ->
      let c = Cap.set_bounds heap ~base:(Cap.base heap + 4096) ~length:4096 in
      let slot = Cap.set_addr c (Cap.base c + 256) in
      M.store_cap ctx slot heap;
      M.store_u64 ctx (Cap.set_addr c (Cap.base c + 8)) 99L;
      M.zero ctx c;
      let v = M.load_u64 ctx (Cap.set_addr c (Cap.base c + 8)) in
      let t = M.load_cap ctx slot in
      ignore m;
      Int64.equal v 0L && not (Cap.tag t))
  in
  check "zeroed and untagged" true ok

(* ---- load barrier ---- *)

let test_clg_fault_fires_and_heals () =
  let m = mk () in
  let faults_seen = ref 0 in
  let loaded = ref Cap.null in
  M.set_clg_fault_handler m
    (Some
       (fun fctx ~vaddr pte ->
         ignore vaddr;
         incr faults_seen;
         M.charge fctx 100;
         pte.Vm.Pte.clg <- Vm.Pmap.generation (Vm.Aspace.pmap (M.aspace m))));
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let l = M.layout m in
      M.map ctx ~vaddr:l.Vm.Layout.heap_base ~len:4096 ~writable:true;
      let heap = heap_cap m in
      let slot = Cap.set_bounds heap ~base:(Cap.base heap) ~length:16 in
      let v = Cap.set_bounds heap ~base:(Cap.base heap + 2048) ~length:16 in
      M.store_cap ctx slot v;
      (* no mismatch yet *)
      ignore (M.load_cap ctx slot);
      Alcotest.(check int) "no fault while generations agree" 0 !faults_seen;
      ()));
  ignore (M.spawn m ~name:"rev" ~core:2 ~user:false (fun ctx ->
      M.sleep ctx 1_000_000;
      let (), _ = M.stop_the_world ctx (fun () -> M.toggle_clg ctx) in
      ()));
  M.run m;
  (* second run: after toggle, app loads trap once then heal *)
  let m = mk () in
  M.set_clg_fault_handler m
    (Some
       (fun fctx ~vaddr pte ->
         ignore vaddr;
         incr faults_seen;
         M.charge fctx 100;
         pte.Vm.Pte.clg <- Vm.Pmap.generation (Vm.Aspace.pmap (M.aspace m))));
  let barrier = M.condvar () in
  let ready = ref false and toggled = ref false in
  ignore (M.spawn m ~name:"rev" ~core:2 ~user:false (fun ctx ->
      while not !ready do M.wait ctx barrier done;
      let (), _ = M.stop_the_world ctx (fun () -> M.toggle_clg ctx) in
      toggled := true;
      M.broadcast ctx barrier));
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let l = M.layout m in
      (* map and populate the page BEFORE the generation toggle: the PTE
         keeps the old generation and the next tagged load must trap *)
      M.map ctx ~vaddr:l.Vm.Layout.heap_base ~len:4096 ~writable:true;
      let heap = heap_cap m in
      let slot = Cap.set_bounds heap ~base:(Cap.base heap) ~length:16 in
      let v = Cap.set_bounds heap ~base:(Cap.base heap + 2048) ~length:16 in
      M.store_cap ctx slot v;
      ready := true;
      M.broadcast ctx barrier;
      while not !toggled do M.wait ctx barrier done;
      faults_seen := 0;
      loaded := M.load_cap ctx slot;
      Alcotest.(check int) "exactly one fault" 1 !faults_seen;
      (* self-healed: second load does not fault *)
      ignore (M.load_cap ctx slot);
      Alcotest.(check int) "healed" 1 !faults_seen));
  M.run m;
  check "load returned the capability" true (Cap.tag !loaded);
  check_int "machine counted it" 1 (M.clg_fault_count m)

let test_untagged_load_never_faults () =
  let m = mk () in
  let faults = ref 0 in
  M.set_clg_fault_handler m
    (Some (fun _ ~vaddr:_ pte -> incr faults;
            pte.Vm.Pte.clg <- Vm.Pmap.generation (Vm.Aspace.pmap (M.aspace m))));
  ignore (M.spawn m ~name:"rev" ~core:2 ~user:false (fun ctx ->
      let (), _ = M.stop_the_world ctx (fun () -> M.toggle_clg ctx) in ()));
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      M.sleep ctx 100_000;
      let l = M.layout m in
      M.map ctx ~vaddr:l.Vm.Layout.heap_base ~len:4096 ~writable:true;
      let heap = heap_cap m in
      let slot = Cap.set_bounds heap ~base:(Cap.base heap) ~length:16 in
      M.store_u64 ctx slot 123L;
      ignore (M.load_cap ctx slot)));
  M.run m;
  check_int "no faults for untagged granules" 0 !faults

let test_load_filter_applies () =
  let m = mk () in
  M.set_cap_load_filter m (Some (fun _ c -> Cap.clear_tag c));
  let got = ref Cap.null in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let l = M.layout m in
      M.map ctx ~vaddr:l.Vm.Layout.heap_base ~len:4096 ~writable:true;
      let heap = heap_cap m in
      let slot = Cap.set_bounds heap ~base:(Cap.base heap) ~length:16 in
      M.store_cap ctx slot heap;
      got := M.load_cap ctx slot));
  M.run m;
  check "filter stripped tag" false (Cap.tag !got)

let test_tlb_shootdown_refill () =
  let m = mk () in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx ->
      let l = M.layout m in
      M.map ctx ~vaddr:l.Vm.Layout.heap_base ~len:4096 ~writable:true;
      let heap = heap_cap m in
      let c = Cap.set_bounds heap ~base:(Cap.base heap) ~length:16 in
      ignore (M.load_u64 ctx c);
      let cost_before = M.now ctx in
      ignore (M.load_u64 ctx c);
      let hit_cost = M.now ctx - cost_before in
      M.tlb_shootdown ctx ~vpages:[ Cap.base c / 4096 ];
      let t0 = M.now ctx in
      ignore (M.load_u64 ctx c);
      let refill_cost = M.now ctx - t0 in
      check "refill pays the walk" true (refill_cost >= hit_cost + Cost.tlb_walk)));
  M.run m

let () =
  Alcotest.run "machine"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "charge" `Quick test_charge_advances_clock;
          Alcotest.test_case "two cores" `Quick test_two_cores_independent;
          Alcotest.test_case "context switch" `Quick test_same_core_context_switch;
          Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
          Alcotest.test_case "condvar wake time" `Quick test_condvar_wakeup_time;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detection;
          Alcotest.test_case "quantum fairness" `Quick test_quantum_preemption_fairness;
        ] );
      ( "stw",
        [
          Alcotest.test_case "pause accounting" `Quick test_stw_pause_accounting;
          Alcotest.test_case "idle park" `Quick test_stw_idle_thread_parked_in_place;
          Alcotest.test_case "syscall drain" `Quick test_stw_syscall_drain_cost;
          Alcotest.test_case "user cannot initiate" `Quick test_stw_user_thread_cannot_initiate;
        ] );
      ( "memory",
        [
          Alcotest.test_case "load/store" `Quick test_load_store_roundtrip;
          Alcotest.test_case "cap roundtrip" `Quick test_cap_store_load_roundtrip;
          Alcotest.test_case "cap-dirty" `Quick test_cap_store_sets_dirty;
          Alcotest.test_case "untagged no dirty" `Quick test_untagged_store_no_dirty;
          Alcotest.test_case "oob fault" `Quick test_capability_fault_on_oob;
          Alcotest.test_case "untagged fault" `Quick test_capability_fault_untagged;
          Alcotest.test_case "page fault" `Quick test_page_fault_unmapped;
          Alcotest.test_case "cap_store page" `Quick test_store_without_capstore_page;
          Alcotest.test_case "zero" `Quick test_zero_clears;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "clg fault heals" `Quick test_clg_fault_fires_and_heals;
          Alcotest.test_case "untagged never faults" `Quick test_untagged_load_never_faults;
          Alcotest.test_case "load filter" `Quick test_load_filter_applies;
          Alcotest.test_case "shootdown refill" `Quick test_tlb_shootdown_refill;
        ] );
    ]
