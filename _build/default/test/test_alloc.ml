(* Allocator and size-class tests. *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Allocator = Alloc.Allocator
module Sizeclass = Alloc.Sizeclass

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

(* run [f alloc ctx] inside a fresh machine's app thread *)
let with_alloc f =
  let m = M.create cfg in
  let alloc = Allocator.create m in
  let out = ref None in
  ignore (M.spawn m ~name:"app" ~core:3 (fun ctx -> out := Some (f alloc ctx)));
  M.run m;
  Option.get !out

(* ---- size classes ---- *)

let test_sizeclass_monotone () =
  for i = 0 to Sizeclass.num_classes - 2 do
    check "ascending" true (Sizeclass.size_of_class i < Sizeclass.size_of_class (i + 1))
  done;
  check_int "last is threshold" Sizeclass.large_threshold
    (Sizeclass.size_of_class (Sizeclass.num_classes - 1))

let test_sizeclass_lookup () =
  check "1 byte -> first class" true (Sizeclass.class_of_size 1 = Some 0);
  check "threshold is small" true (Sizeclass.class_of_size Sizeclass.large_threshold <> None);
  check "above threshold is large" true
    (Sizeclass.class_of_size (Sizeclass.large_threshold + 1) = None)

let prop_rounded_fits =
  QCheck.Test.make ~name:"rounded size covers request and is representable" ~count:500
    (QCheck.make QCheck.Gen.(map (fun n -> n + 1) (int_bound ((1 lsl 20) - 1))))
    (fun req ->
      let r = Sizeclass.rounded_size req in
      r >= req && r mod 16 = 0
      && Cheri.Compress.is_exact ~base:(Cheri.Compress.required_alignment r * 2) ~length:r)

let prop_large_rounding_bounded_waste =
  QCheck.Test.make ~name:"large rounding wastes at most ~30%" ~count:300
    (QCheck.make
       QCheck.Gen.(map (fun n -> Sizeclass.large_threshold + 1 + n) (int_bound (1 lsl 22))))
    (fun req ->
      let r = Sizeclass.round_large req in
      r >= req && float_of_int r <= 1.31 *. float_of_int req)

(* ---- allocator ---- *)

let test_malloc_properties () =
  with_alloc (fun alloc ctx ->
      let c = Allocator.malloc alloc ctx 100 in
      check "tagged" true (Cap.tag c);
      check "bounds exact granule multiple" true (Cap.length c mod 16 = 0);
      check "covers request" true (Cap.length c >= 100);
      check "can load" true (Cap.can_load c);
      check "can store" true (Cap.can_store c);
      check "no execute" false (Cheri.Perms.mem (Cap.perms c) Cheri.Perms.execute);
      check_int "addr at base" (Cap.base c) (Cap.addr c))

let test_malloc_distinct () =
  with_alloc (fun alloc ctx ->
      let a = Allocator.malloc alloc ctx 64 in
      let b = Allocator.malloc alloc ctx 64 in
      check "disjoint" true (Cap.top a <= Cap.base b || Cap.top b <= Cap.base a))

let test_free_reuse () =
  with_alloc (fun alloc ctx ->
      let a = Allocator.malloc alloc ctx 64 in
      let base = Cap.base a in
      Allocator.free alloc ctx a;
      let b = Allocator.malloc alloc ctx 64 in
      check_int "LIFO reuse" base (Cap.base b))

let test_double_free_detected () =
  with_alloc (fun alloc ctx ->
      let a = Allocator.malloc alloc ctx 64 in
      Allocator.free alloc ctx a;
      check "double free raises" true
        (try Allocator.free alloc ctx a; false with Invalid_argument _ -> true))

let test_wild_free_detected () =
  with_alloc (fun alloc ctx ->
      let a = Allocator.malloc alloc ctx 64 in
      let wild = Cap.set_bounds a ~base:(Cap.base a + 16) ~length:16 in
      check "interior free raises" true
        (try Allocator.free alloc ctx wild; false with Invalid_argument _ -> true))

let test_reuse_scrubbed () =
  with_alloc (fun alloc ctx ->
      let a = Allocator.malloc alloc ctx 64 in
      Sim.Machine.store_u64 ctx a 0xabcdefL;
      Sim.Machine.store_cap ctx (Cap.incr_addr a 16) a;
      Allocator.free alloc ctx a;
      let b = Allocator.malloc alloc ctx 64 in
      Alcotest.(check int64) "data zeroed" 0L (Sim.Machine.load_u64 ctx b);
      check "tag scrubbed" false (Cap.tag (Sim.Machine.load_cap ctx (Cap.incr_addr b 16)));
      check "scrub accounted" true (Allocator.scrub_bytes alloc >= 64))

let test_live_accounting () =
  with_alloc (fun alloc ctx ->
      let a = Allocator.malloc alloc ctx 100 in
      let b = Allocator.malloc alloc ctx 200 in
      let expect = Cap.length a + Cap.length b in
      check_int "live" expect (Allocator.live_bytes alloc);
      check_int "total alloc" expect (Allocator.total_allocated_bytes alloc);
      Allocator.free alloc ctx a;
      check_int "live after free" (Cap.length b) (Allocator.live_bytes alloc);
      check_int "freed" (Cap.length a) (Allocator.total_freed_bytes alloc);
      check_int "count" 2 (Allocator.allocation_count alloc))

let test_withdraw_release () =
  with_alloc (fun alloc ctx ->
      let a = Allocator.malloc alloc ctx 64 in
      let base = Cap.base a in
      let size = Allocator.withdraw alloc ctx a in
      check_int "withdrawn size" (Cap.length a) size;
      (* withdrawn memory is NOT reusable yet *)
      let b = Allocator.malloc alloc ctx 64 in
      check "not immediately reused" true (Cap.base b <> base);
      Allocator.release_range alloc ctx ~addr:base ~size;
      let c = Allocator.malloc alloc ctx 64 in
      check_int "reusable after release" base (Cap.base c))

let test_large_path () =
  with_alloc (fun alloc ctx ->
      let big = Allocator.malloc alloc ctx (128 * 1024) in
      check "large tagged" true (Cap.tag big);
      check "covers" true (Cap.length big >= 128 * 1024);
      let base = Cap.base big in
      Allocator.free alloc ctx big;
      let again = Allocator.malloc alloc ctx (128 * 1024) in
      check_int "large reuse" base (Cap.base again))

let test_usable_size () =
  with_alloc (fun alloc ctx ->
      let a = Allocator.malloc alloc ctx 100 in
      check "usable" true
        (Allocator.usable_size alloc ~addr:(Cap.base a) = Some (Cap.length a));
      check "unknown addr" true (Allocator.usable_size alloc ~addr:12345678 = None))

let test_rss_tracking () =
  with_alloc (fun alloc ctx ->
      let before = Allocator.peak_rss_pages alloc in
      let cs = List.init 64 (fun _ -> Allocator.malloc alloc ctx 4096) in
      let after = Allocator.peak_rss_pages alloc in
      check "rss grew" true (after > before);
      List.iter (fun c -> Allocator.free alloc ctx c) cs;
      check "peak sticky" true (Allocator.peak_rss_pages alloc >= after))

let prop_no_overlap =
  QCheck.Test.make ~name:"live allocations never overlap" ~count:30
    QCheck.(small_list (int_bound 2000))
    (fun sizes ->
      with_alloc (fun alloc ctx ->
          let caps = List.map (fun s -> Allocator.malloc alloc ctx (s + 1)) sizes in
          let rec disjoint = function
            | [] -> true
            | c :: rest ->
                List.for_all
                  (fun d -> Cap.top c <= Cap.base d || Cap.top d <= Cap.base c)
                  rest
                && disjoint rest
          in
          disjoint caps))

let prop_alloc_free_alloc_stable =
  QCheck.Test.make ~name:"free then alloc of same size reuses without leak" ~count:20
    (QCheck.make QCheck.Gen.(int_range 1 1000))
    (fun size ->
      with_alloc (fun alloc ctx ->
          let a = Allocator.malloc alloc ctx size in
          let live0 = Allocator.live_bytes alloc in
          for _ = 1 to 20 do
            let c = Allocator.malloc alloc ctx size in
            Allocator.free alloc ctx c
          done;
          ignore a;
          Allocator.live_bytes alloc = live0))

let () =
  Alcotest.run "alloc"
    [
      ( "sizeclass",
        [
          Alcotest.test_case "monotone" `Quick test_sizeclass_monotone;
          Alcotest.test_case "lookup" `Quick test_sizeclass_lookup;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "malloc properties" `Quick test_malloc_properties;
          Alcotest.test_case "distinct" `Quick test_malloc_distinct;
          Alcotest.test_case "free/reuse" `Quick test_free_reuse;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "wild free" `Quick test_wild_free_detected;
          Alcotest.test_case "reuse scrubbed" `Quick test_reuse_scrubbed;
          Alcotest.test_case "accounting" `Quick test_live_accounting;
          Alcotest.test_case "withdraw/release" `Quick test_withdraw_release;
          Alcotest.test_case "large path" `Quick test_large_path;
          Alcotest.test_case "usable size" `Quick test_usable_size;
          Alcotest.test_case "rss" `Quick test_rss_tracking;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rounded_fits; prop_large_rounding_bounded_waste; prop_no_overlap;
            prop_alloc_free_alloc_stable ] );
    ]
