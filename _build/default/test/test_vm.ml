(* Virtual memory subsystem tests: PTEs, pmap, TLB, address spaces,
   layout arithmetic, reservations. *)

module Pte = Vm.Pte
module Pmap = Vm.Pmap
module Tlb = Vm.Tlb
module Phys = Vm.Phys
module Aspace = Vm.Aspace
module Layout = Vm.Layout
module Reservation = Vm.Reservation
module Mem = Tagmem.Mem

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let page = Phys.page_size

let mk_phys () = Phys.create (Mem.create ~size:(1 lsl 20))

let test_phys_alloc_free () =
  let p = mk_phys () in
  let total = Phys.total_frames p in
  check_int "all free initially" total (Phys.free_frames p);
  let f = Phys.alloc_frame p in
  check_int "one taken" (total - 1) (Phys.free_frames p);
  Phys.free_frame p f;
  check_int "returned" total (Phys.free_frames p)

let test_phys_exhaustion () =
  let p = mk_phys () in
  for _ = 1 to Phys.total_frames p do
    ignore (Phys.alloc_frame p)
  done;
  Alcotest.check_raises "exhausted" Out_of_memory (fun () ->
      ignore (Phys.alloc_frame p))

let test_zero_frame () =
  let p = mk_phys () in
  let f = Phys.alloc_frame p in
  let a = Phys.frame_addr f in
  Tagmem.Mem.write_u64 (Phys.mem p) a 77L;
  Phys.zero_frame p f;
  Alcotest.(check int64) "zeroed" 0L (Tagmem.Mem.read_u64 (Phys.mem p) a)

let test_pmap_basic () =
  let pm = Pmap.create ~asid:0 in
  let pte = Pte.make ~frame:3 ~writable:true ~clg:false in
  Pmap.enter pm ~vpage:10 pte;
  check "mem" true (Pmap.mem pm ~vpage:10);
  check "lookup" true (Pmap.lookup pm ~vpage:10 = Some pte);
  check_int "count" 1 (Pmap.page_count pm);
  Pmap.remove pm ~vpage:10;
  check "removed" false (Pmap.mem pm ~vpage:10)

let test_pmap_sorted () =
  let pm = Pmap.create ~asid:0 in
  List.iter
    (fun vp -> Pmap.enter pm ~vpage:vp (Pte.make ~frame:vp ~writable:true ~clg:false))
    [ 9; 2; 5 ];
  Alcotest.(check (list int)) "sorted" [ 2; 5; 9 ] (Pmap.sorted_vpages pm)

let test_pmap_lock_protocol () =
  let pm = Pmap.create ~asid:0 in
  let contended = Pmap.lock pm ~who:1 in
  check "uncontended" false contended;
  Alcotest.check_raises "re-entrant"
    (Invalid_argument "Pmap.lock: re-entrant acquisition") (fun () ->
      ignore (Pmap.lock pm ~who:1));
  Pmap.unlock pm ~who:1;
  Alcotest.check_raises "unlock not holder"
    (Invalid_argument "Pmap.unlock: not the holder") (fun () -> Pmap.unlock pm ~who:2);
  check_int "acquisitions" 1 (Pmap.lock_acquisitions pm)

let test_pmap_generation () =
  let pm = Pmap.create ~asid:0 in
  check "initial gen" false (Pmap.generation pm);
  Pmap.set_generation pm true;
  check "flipped" true (Pmap.generation pm)

let test_pmap_busy () =
  let pm = Pmap.create ~asid:0 in
  check "not busy" false (Pmap.is_busy pm);
  Pmap.busy pm;
  Pmap.busy pm;
  Pmap.unbusy pm;
  check "still busy" true (Pmap.is_busy pm);
  Pmap.unbusy pm;
  Alcotest.check_raises "unbalanced" (Invalid_argument "Pmap.unbusy: not busy")
    (fun () -> Pmap.unbusy pm)

let test_tlb_fill_and_hit () =
  let tlb = Tlb.create ~entries:16 () in
  check "miss first" true (Tlb.lookup tlb ~vpage:5 = None);
  let pte = Pte.make ~frame:1 ~writable:true ~clg:false in
  let e = Tlb.insert tlb ~vpage:5 pte in
  check "snapshot clg" false e.Tlb.clg_snapshot;
  check "hit" true (Tlb.lookup tlb ~vpage:5 <> None);
  check_int "hits" 1 (Tlb.hits tlb);
  check_int "misses" 1 (Tlb.misses tlb)

let test_tlb_snapshot_staleness () =
  let tlb = Tlb.create ~entries:16 () in
  let pte = Pte.make ~frame:1 ~writable:true ~clg:false in
  let e = Tlb.insert tlb ~vpage:5 pte in
  pte.Pte.clg <- true;
  check "stale snapshot" false e.Tlb.clg_snapshot;
  Tlb.refresh e;
  check "refreshed" true e.Tlb.clg_snapshot

let test_tlb_invalidate () =
  let tlb = Tlb.create ~entries:16 () in
  let pte = Pte.make ~frame:1 ~writable:true ~clg:false in
  ignore (Tlb.insert tlb ~vpage:5 pte);
  Tlb.invalidate_page tlb ~vpage:5;
  check "gone" true (Tlb.lookup tlb ~vpage:5 = None);
  ignore (Tlb.insert tlb ~vpage:5 pte);
  Tlb.flush tlb;
  check "flushed" true (Tlb.lookup tlb ~vpage:5 = None)

let test_tlb_conflict () =
  let tlb = Tlb.create ~entries:16 () in
  let pte = Pte.make ~frame:1 ~writable:true ~clg:false in
  ignore (Tlb.insert tlb ~vpage:5 pte);
  ignore (Tlb.insert tlb ~vpage:21 pte);
  (* direct-mapped: 21 land 15 = 5, so it evicts vpage 5 *)
  check "evicted" true (Tlb.lookup tlb ~vpage:5 = None)

let test_layout_shadow_math () =
  let l = Layout.make ~heap_bytes:(1 lsl 20) in
  check "heap below shadow" true (l.Layout.heap_limit < l.Layout.shadow_base);
  let a = l.Layout.heap_base in
  check_int "first byte" l.Layout.shadow_base (Layout.shadow_addr_of_heap l a);
  check_int "first bit" 0 (Layout.shadow_bit_of_heap a);
  let a2 = l.Layout.heap_base + 128 in
  check_int "next shadow byte" (l.Layout.shadow_base + 1) (Layout.shadow_addr_of_heap l a2);
  let a3 = l.Layout.heap_base + 16 in
  check_int "second granule bit" 1 (Layout.shadow_bit_of_heap a3);
  check "contains" true (Layout.contains_heap l a);
  check "not below" false (Layout.contains_heap l (a - 1));
  check "not at limit" false (Layout.contains_heap l l.Layout.heap_limit)

let test_aspace_map_translate () =
  let phys = mk_phys () in
  let layout = Layout.make ~heap_bytes:(1 lsl 18) in
  let asp = Aspace.create phys layout ~asid:0 in
  let va = layout.Layout.heap_base in
  let fresh = Aspace.map_range asp ~vaddr:va ~len:(3 * page) ~writable:true in
  check_int "three pages" 3 fresh;
  check_int "idempotent" 0 (Aspace.map_range asp ~vaddr:va ~len:page ~writable:true);
  (match Aspace.translate asp (va + 123) with
  | Some (pa, pte) ->
      check "offset preserved" true (pa land (page - 1) = (va + 123) land (page - 1));
      check "writable" true pte.Pte.writable
  | None -> Alcotest.fail "translate failed");
  check "unmapped is None" true (Aspace.translate asp (va + (100 * page)) = None)

let test_aspace_unmap () =
  let phys = mk_phys () in
  let layout = Layout.make ~heap_bytes:(1 lsl 18) in
  let asp = Aspace.create phys layout ~asid:0 in
  let va = layout.Layout.heap_base in
  let free0 = Phys.free_frames phys in
  ignore (Aspace.map_range asp ~vaddr:va ~len:(2 * page) ~writable:true);
  let removed = Aspace.unmap_range asp ~vaddr:va ~len:(2 * page) in
  check_int "two removed" 2 (List.length removed);
  check_int "frames returned" free0 (Phys.free_frames phys);
  check "gone" true (Aspace.translate asp va = None)

let test_aspace_new_pte_generation () =
  let phys = mk_phys () in
  let layout = Layout.make ~heap_bytes:(1 lsl 18) in
  let asp = Aspace.create phys layout ~asid:0 in
  Pmap.set_generation (Aspace.pmap asp) true;
  ignore (Aspace.map_range asp ~vaddr:layout.Layout.heap_base ~len:page ~writable:true);
  match Aspace.translate asp layout.Layout.heap_base with
  | Some (_, pte) -> check "adopts generation" true pte.Pte.clg
  | None -> Alcotest.fail "unmapped"

let test_reservation_lifecycle () =
  let r = Reservation.make ~base:(16 * page) ~length:(4 * page) in
  check "active" true (Reservation.state r = Reservation.Active);
  check "not guarded" false (Reservation.is_guarded r (16 * page));
  Reservation.unmap_part r ~off:0 ~len:page;
  check "guarded hole" true (Reservation.is_guarded r (16 * page));
  check "rest mapped" false (Reservation.is_guarded r (17 * page));
  check "still active" true (Reservation.state r = Reservation.Active);
  Reservation.unmap_part r ~off:page ~len:(3 * page);
  check "quarantined when empty" true (Reservation.state r = Reservation.Quarantined);
  Reservation.release r;
  check "released" true (Reservation.state r = Reservation.Released)

let test_reservation_errors () =
  Alcotest.check_raises "unaligned" (Invalid_argument "Reservation.make: page alignment")
    (fun () -> ignore (Reservation.make ~base:100 ~length:page));
  let r = Reservation.make ~base:0 ~length:(2 * page) in
  Alcotest.check_raises "bad range" (Invalid_argument "Reservation.unmap_part: bad range")
    (fun () -> Reservation.unmap_part r ~off:0 ~len:(3 * page));
  Alcotest.check_raises "release active"
    (Invalid_argument "Reservation.release: not quarantined") (fun () ->
      Reservation.release r)

let test_reservation_double_unmap_idempotent () =
  let r = Reservation.make ~base:0 ~length:(2 * page) in
  Reservation.unmap_part r ~off:0 ~len:page;
  Reservation.unmap_part r ~off:0 ~len:page;
  check "still active after double unmap of same page" true
    (Reservation.state r = Reservation.Active)

let prop_shadow_bijection =
  QCheck.Test.make ~name:"shadow byte/bit addressing is injective per granule"
    ~count:300
    QCheck.(pair (int_bound 4000) (int_bound 4000))
    (fun (g1, g2) ->
      let l = Layout.make ~heap_bytes:(1 lsl 20) in
      let a1 = l.Layout.heap_base + (g1 * 16) and a2 = l.Layout.heap_base + (g2 * 16) in
      g1 = g2
      || Layout.shadow_addr_of_heap l a1 <> Layout.shadow_addr_of_heap l a2
      || Layout.shadow_bit_of_heap a1 <> Layout.shadow_bit_of_heap a2)

let () =
  Alcotest.run "vm"
    [
      ( "phys",
        [
          Alcotest.test_case "alloc/free" `Quick test_phys_alloc_free;
          Alcotest.test_case "exhaustion" `Quick test_phys_exhaustion;
          Alcotest.test_case "zero frame" `Quick test_zero_frame;
        ] );
      ( "pmap",
        [
          Alcotest.test_case "basic" `Quick test_pmap_basic;
          Alcotest.test_case "sorted" `Quick test_pmap_sorted;
          Alcotest.test_case "lock protocol" `Quick test_pmap_lock_protocol;
          Alcotest.test_case "generation" `Quick test_pmap_generation;
          Alcotest.test_case "busy" `Quick test_pmap_busy;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "fill and hit" `Quick test_tlb_fill_and_hit;
          Alcotest.test_case "snapshot staleness" `Quick test_tlb_snapshot_staleness;
          Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
          Alcotest.test_case "conflict eviction" `Quick test_tlb_conflict;
        ] );
      ("layout", [ Alcotest.test_case "shadow math" `Quick test_layout_shadow_math ]);
      ( "aspace",
        [
          Alcotest.test_case "map/translate" `Quick test_aspace_map_translate;
          Alcotest.test_case "unmap" `Quick test_aspace_unmap;
          Alcotest.test_case "new pte generation" `Quick test_aspace_new_pte_generation;
        ] );
      ( "reservation",
        [
          Alcotest.test_case "lifecycle" `Quick test_reservation_lifecycle;
          Alcotest.test_case "errors" `Quick test_reservation_errors;
          Alcotest.test_case "double unmap" `Quick test_reservation_double_unmap_idempotent;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_shadow_bijection ]);
    ]
