(* Cross-strategy integration tests: semantic transparency (a correct
   program computes the same results under every temporal-safety mode)
   and whole-system behaviours that span several subsystems. *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

(* A deterministic program that builds, mutates, and tears down a linked
   structure in simulated memory, returning a checksum of everything it
   read. Correct (no use after free), so every mode must agree. *)
let checksum_program mode =
  let rt = Runtime.create ~config:cfg mode in
  let m = rt.Runtime.machine in
  let sum = ref 0L in
  ignore
    (M.spawn m ~name:"app" ~core:3 (fun ctx ->
         let regs = M.regs (M.self ctx) in
         let rng = Sim.Prng.create ~seed:99 in
         let table = Runtime.malloc rt ctx 2048 in
         Sim.Regfile.set regs 0 table;
         let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
         let nslots = 128 in
         for i = 0 to nslots - 1 do
           let c = Runtime.malloc rt ctx (32 + (16 * Sim.Prng.int rng 20)) in
           M.store_u64 ctx c (Int64.of_int (i * 31));
           M.store_cap ctx (slot i) c
         done;
         for _ = 1 to 10_000 do
           let i = Sim.Prng.int rng nslots in
           let c = M.load_cap ctx (slot i) in
           Sim.Regfile.set regs 1 c;
           (match Sim.Prng.int rng 3 with
           | 0 ->
               (* replace *)
               let v = M.load_u64 ctx c in
               sum := Int64.add !sum v;
               Runtime.free rt ctx c;
               Sim.Regfile.set regs 1 Cap.null;
               let c' = Runtime.malloc rt ctx (32 + (16 * Sim.Prng.int rng 20)) in
               M.store_u64 ctx c' (Int64.add v 1L);
               M.store_cap ctx (slot i) c'
           | 1 ->
               (* mutate *)
               let v = M.load_u64 ctx c in
               M.store_u64 ctx c (Int64.add v 3L)
           | _ ->
               (* read *)
               sum := Int64.add !sum (M.load_u64 ctx c));
           ()
         done;
         Runtime.finish rt ctx));
  M.run m;
  !sum

let test_semantic_transparency () =
  let base = checksum_program Runtime.Baseline in
  List.iter
    (fun mode ->
      let s = checksum_program mode in
      Alcotest.(check int64)
        (Printf.sprintf "checksum under %s" (Runtime.mode_name mode))
        base s)
    [
      Runtime.Safe Revoker.Paint_sync;
      Runtime.Safe Revoker.Cherivoke;
      Runtime.Safe Revoker.Cornucopia;
      Runtime.Safe Revoker.Reloaded;
      Runtime.Safe Revoker.Cheriot_filter;
    ]

(* The revocation bitmap is empty once everything settles: every painted
   range is eventually cleared by dequarantine. *)
let test_bitmap_settles () =
  List.iter
    (fun strategy ->
      let rt = Runtime.create ~config:cfg (Runtime.Safe strategy) in
      let m = rt.Runtime.machine in
      ignore
        (M.spawn m ~name:"app" ~core:3 (fun ctx ->
             for _ = 1 to 3_000 do
               let c = Runtime.malloc rt ctx 256 in
               M.store_u64 ctx c 5L;
               Runtime.free rt ctx c
             done;
             (* drain: churn gently until nothing is left in flight *)
             (match rt.Runtime.revoker with
             | Some rv ->
                 while Revoker.in_flight rv || Revoker.queued_bytes rv > 0 do
                   M.sleep ctx 100_000
                 done
             | None -> ());
             Runtime.finish rt ctx));
      M.run m;
      match (rt.Runtime.revoker, rt.Runtime.mrs) with
      | Some rv, Some mrs ->
          let leftover = Ccr.Mrs.quarantine_bytes mrs in
          check
            (Printf.sprintf "bitmap bits match leftover quarantine (%s)"
               (Revoker.strategy_name strategy))
            true
            (Ccr.Revmap.set_bits (Revoker.revmap rv) * 16 = leftover)
      | _ -> Alcotest.fail "no revoker")
    [ Revoker.Cherivoke; Revoker.Cornucopia; Revoker.Reloaded ]

(* Kernel hoards: a capability handed to an asynchronous kernel facility
   before free must come back revoked after the epoch — the §4.4 flow. *)
let test_kernel_hoard_flow () =
  let m = M.create cfg in
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let hoards = Kernel.Hoard.create () in
  let rv = Revoker.create m ~strategy:Revoker.Reloaded ~core:2 ~hoards () in
  let mrs = Ccr.Mrs.create m ~alloc ~revoker:rv () in
  ignore
    (M.spawn m ~name:"app" ~core:3 (fun ctx ->
         let victim = Ccr.Mrs.malloc mrs ctx 128 in
         let handle = Kernel.Hoard.register hoards ctx victim in
         let painted_at = Ccr.Epoch.counter (Revoker.epoch rv) in
         Ccr.Mrs.free mrs ctx victim;
         while not (Ccr.Epoch.is_clean (Revoker.epoch rv) ~painted_at) do
           let c = Ccr.Mrs.malloc mrs ctx 512 in
           Ccr.Mrs.free mrs ctx c
         done;
         (* the kernel must never divulge an unchecked capability *)
         let back = Kernel.Hoard.retrieve hoards ctx handle in
         check "hoarded capability revoked" false (Cap.tag back);
         Ccr.Mrs.finish mrs ctx));
  M.run m

(* Off-core register files ARE kernel hoards: a thread that sleeps across
   a revocation epoch wakes with its stale registers revoked. *)
let test_sleeping_thread_registers_scanned () =
  let m = M.create cfg in
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let rv = Revoker.create m ~strategy:Revoker.Cherivoke ~core:2 () in
  let mrs = Ccr.Mrs.create m ~alloc ~revoker:rv () in
  let sleeper_saw = ref Cap.null in
  let victim_ref = ref Cap.null in
  let handoff = M.condvar () in
  ignore
    (M.spawn m ~name:"sleeper" ~core:1 (fun ctx ->
         let regs = M.regs (M.self ctx) in
         while not (Cap.tag !victim_ref) do
           M.wait ctx handoff
         done;
         Sim.Regfile.set regs 7 !victim_ref;
         (* sleep across at least one revocation epoch *)
         M.sleep ctx 2_000_000_000;
         sleeper_saw := Sim.Regfile.get regs 7));
  ignore
    (M.spawn m ~name:"app" ~core:3 (fun ctx ->
         let victim = Ccr.Mrs.malloc mrs ctx 128 in
         victim_ref := victim;
         M.broadcast ctx handoff;
         M.yield ctx;
         let painted_at = Ccr.Epoch.counter (Revoker.epoch rv) in
         Ccr.Mrs.free mrs ctx victim;
         while not (Ccr.Epoch.is_clean (Revoker.epoch rv) ~painted_at) do
           let c = Ccr.Mrs.malloc mrs ctx 512 in
           Ccr.Mrs.free mrs ctx c
         done;
         Ccr.Mrs.finish mrs ctx));
  M.run m;
  check "sleeper's register was revoked while parked" false (Cap.tag !sleeper_saw)

(* The full temporal-safety stack over the second allocator: the shim is
   allocator-generic (Backend), so UAR must be stopped on jemalloc too. *)
let test_jemalloc_stack () =
  let rt = Runtime.create ~config:cfg ~allocator:Runtime.Jemalloc
      (Runtime.Safe Revoker.Reloaded) in
  let m = rt.Runtime.machine in
  let stopped = ref false in
  ignore
    (M.spawn m ~name:"app" ~core:3 (fun ctx ->
         let regs = M.regs (M.self ctx) in
         let victim = Runtime.malloc rt ctx 256 in
         Sim.Regfile.set regs 5 victim;
         let rv = Option.get rt.Runtime.revoker in
         let painted_at = Ccr.Epoch.counter (Revoker.epoch rv) in
         Runtime.free rt ctx victim;
         while not (Ccr.Epoch.is_clean (Revoker.epoch rv) ~painted_at) do
           let c = Runtime.malloc rt ctx 256 in
           Runtime.free rt ctx c
         done;
         let recycled = ref Cap.null in
         let tries = ref 0 in
         while (not (Cap.tag !recycled)) && !tries < 4000 do
           incr tries;
           let c = Runtime.malloc rt ctx 256 in
           if Cap.base c = Cap.base victim then recycled := c
         done;
         check "victim recycled" true (Cap.tag !recycled);
         M.store_u64 ctx !recycled 0x5ecL;
         (match M.load_u64 ctx (Sim.Regfile.get regs 5) with
         | _ -> ()
         | exception M.Capability_fault _ -> stopped := true);
         Runtime.finish rt ctx));
  M.run m;
  check "UAR stopped on jemalloc" true !stopped

(* Runtime facade sanity. *)
let test_runtime_modes () =
  check_int "five paper modes" 5 (List.length Runtime.all_modes);
  List.iter
    (fun mode ->
      let name = Runtime.mode_name mode in
      check "mode named" true (String.length name > 0))
    Runtime.all_modes

let () =
  Alcotest.run "integration"
    [
      ( "integration",
        [
          Alcotest.test_case "semantic transparency" `Slow test_semantic_transparency;
          Alcotest.test_case "bitmap settles" `Slow test_bitmap_settles;
          Alcotest.test_case "kernel hoard flow" `Quick test_kernel_hoard_flow;
          Alcotest.test_case "sleeping registers scanned" `Quick
            test_sleeping_thread_registers_scanned;
          Alcotest.test_case "jemalloc stack" `Quick test_jemalloc_stack;
          Alcotest.test_case "runtime modes" `Quick test_runtime_modes;
        ] );
    ]
