(* An interactive (pgbench-style) server under different revokers: the
   workload the paper's figure 7 is about. Prints per-transaction latency
   percentiles and an ASCII CDF, showing CHERIvoke's stop-the-world
   corner, Cornucopia's smaller one, and Reloaded's near-absence of one.

     dune exec examples/interactive_server.exe *)

module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker

let () =
  let config =
    { Workload.Pgbench.default_config with Workload.Pgbench.transactions = 3000 }
  in
  let modes =
    [
      Runtime.Baseline;
      Runtime.Safe Revoker.Paint_sync;
      Runtime.Safe Revoker.Cherivoke;
      Runtime.Safe Revoker.Cornucopia;
      Runtime.Safe Revoker.Reloaded;
    ]
  in
  Format.printf "pgbench-style server, %d transactions per mode@.@."
    config.Workload.Pgbench.transactions;
  let tbl =
    Stats.Table.create
      ~header:[ "mode"; "tx/s"; "p50 us"; "p90"; "p99"; "p99.9"; "max"; "revocations" ]
  in
  let curves = ref [] in
  List.iter
    (fun mode ->
      let r = Workload.Pgbench.run ~config ~mode () in
      let l = Array.to_list r.Workload.Result.latencies_us in
      let p q = Stats.Summary.percentile l q in
      let revs =
        match r.Workload.Result.mrs with
        | Some s -> s.Ccr.Mrs.revocations
        | None -> 0
      in
      Stats.Table.add_row tbl
        [
          r.Workload.Result.mode;
          Printf.sprintf "%.0f" r.Workload.Result.throughput;
          Stats.Table.cell_f (p 50.);
          Stats.Table.cell_f (p 90.);
          Stats.Table.cell_f (p 99.);
          Stats.Table.cell_f (p 99.9);
          Stats.Table.cell_f (List.fold_left max 0. l);
          string_of_int revs;
        ];
      curves := (r.Workload.Result.mode, Stats.Cdf.of_samples l) :: !curves)
    modes;
  Stats.Table.render Format.std_formatter tbl;
  Format.printf "@.latency CDF (fraction of transactions finishing under t us):@.@.";
  Stats.Cdf.render Format.std_formatter (List.rev !curves)
