(* Quickstart: a temporally-safe heap in a dozen lines.

   Build a simulated CHERI machine with the Reloaded revoker, allocate
   and free through the quarantining shim, and watch a dangling pointer
   die at the end of a revocation epoch.

     dune exec examples/quickstart.exe *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker

let () =
  (* a 4-core machine with an 8 MiB heap, protected by Reloaded *)
  let config =
    { M.default_config with heap_bytes = 8 lsl 20; mem_bytes = 32 lsl 20 }
  in
  let rt = Runtime.create ~config (Runtime.Safe Revoker.Reloaded) in
  let m = rt.Runtime.machine in

  ignore
    (M.spawn m ~name:"main" ~core:3 (fun ctx ->
         (* allocate an object; the capability has exact bounds *)
         let obj = Runtime.malloc rt ctx 100 in
         Format.printf "allocated:        %a@." Cap.pp obj;

         M.store_u64 ctx obj 42L;
         Format.printf "stored/loaded:    %Ld@." (M.load_u64 ctx obj);

         (* keep an alias in memory, as a buggy program would *)
         let holder = Runtime.malloc rt ctx 16 in
         M.store_cap ctx holder obj;

         (* free it: the memory is painted into the revocation bitmap and
            quarantined — NOT reused *)
         Runtime.free rt ctx obj;
         Format.printf "freed; quarantine holds %d bytes@."
           (match rt.Runtime.mrs with
           | Some mrs -> Ccr.Mrs.quarantine_bytes mrs
           | None -> 0);

         (* the stale alias still works (use-after-free, before any
            revocation: the object's lifetime is effectively extended) *)
         let stale = M.load_cap ctx holder in
         Format.printf "stale alias:      %a (still tagged: %b)@." Cap.pp stale
           (Cap.tag stale);

         (* churn until the revoker has processed the quarantine *)
         let rv = Option.get rt.Runtime.revoker in
         let painted_at = Ccr.Epoch.counter (Revoker.epoch rv) in
         let n = ref 0 in
         while not (Ccr.Epoch.is_clean (Revoker.epoch rv) ~painted_at) do
           incr n;
           let c = Runtime.malloc rt ctx 4096 in
           Runtime.free rt ctx c
         done;
         Format.printf "churned %d allocations; %d revocation epoch(s) ran@." !n
           (Revoker.revocation_count rv);

         (* the alias is now revoked: its tag is gone, loads fail-stop *)
         let dead = M.load_cap ctx holder in
         Format.printf "after revocation: %a (still tagged: %b)@." Cap.pp dead
           (Cap.tag dead);
         (match M.load_u64 ctx dead with
         | _ -> Format.printf "BUG: dereference succeeded!@."
         | exception M.Capability_fault _ ->
             Format.printf "dereference through the dead pointer fail-stops.@.");

         (* phase report: Reloaded's stop-the-world is microseconds *)
         List.iter
           (fun r ->
             Format.printf
               "  epoch %d: stop-the-world %.1f us, background sweep %.2f ms, %d load faults@."
               r.Revoker.epoch_index
               (Sim.Cost.cycles_to_us r.Revoker.stw_cycles)
               (Sim.Cost.cycles_to_ms r.Revoker.concurrent_cycles)
               r.Revoker.fault_count)
           (Revoker.records rv);
         Runtime.finish rt ctx));
  M.run m
