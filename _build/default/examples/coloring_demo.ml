(* §7.3 of the paper: composing CHERI revocation with memory coloring.

   With k colors, k-1 of every k frees are served by re-coloring alone —
   stale capabilities fail-stop instantly (no UAF/UAR gap) and the
   revoker only runs when a block exhausts its colors.

     dune exec examples/coloring_demo.exe *)

module M = Sim.Machine
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Coloring = Ccr.Coloring

let run colors =
  let config =
    { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }
  in
  let rt = Runtime.create ~config (Runtime.Safe Revoker.Reloaded) in
  let m = rt.Runtime.machine in
  let mrs = Option.get rt.Runtime.mrs in
  let col = Coloring.create m ~mrs ~colors in
  let out = ref (0, 0, 0) in
  ignore
    (M.spawn m ~name:"app" ~core:3 (fun ctx ->
         let rng = Sim.Prng.create ~seed:42 in
         (* demonstrate the instant fail-stop once *)
         let a = Coloring.malloc col ctx 64 in
         Coloring.store col ctx a 1L;
         Coloring.free col ctx a;
         (match Coloring.load col ctx a with
         | _ -> Format.printf "BUG: stale access passed!@."
         | exception Coloring.Color_mismatch { cap_color; mem_color; _ } ->
             if colors = 4 then
               Format.printf
                 "stale access fail-stops immediately: capability color %d, memory now %d@.@."
                 cap_color mem_color);
         (* then a churn workload to measure revocation pressure *)
         for _ = 1 to 10_000 do
           let c = Coloring.malloc col ctx (64 + (16 * Sim.Prng.int rng 28)) in
           Coloring.store col ctx c 7L;
           Coloring.free col ctx c
         done;
         out :=
           ( Coloring.recolor_frees col,
             Coloring.quarantine_frees col,
             Revoker.revocation_count (Option.get rt.Runtime.revoker) );
         Ccr.Mrs.finish mrs ctx));
  M.run m;
  !out

let () =
  Format.printf "revocation pressure vs number of memory colors (10000 frees):@.@.";
  let tbl =
    Stats.Table.create
      ~header:
        [ "colors"; "recolor frees"; "quarantine frees"; "revocation epochs" ]
  in
  List.iter
    (fun k ->
      let recolor, quarantine, revs = run k in
      Stats.Table.add_row tbl
        [ string_of_int k; string_of_int recolor; string_of_int quarantine;
          string_of_int revs ])
    [ 2; 4; 8; 16 ];
  Stats.Table.render Format.std_formatter tbl;
  Format.printf
    "@.quarantine (and hence sweeping) shrinks roughly by the color count,@.\
     while stale pointers die instantly instead of at the next epoch.@."
