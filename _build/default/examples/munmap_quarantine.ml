(* §6.2 of the paper: closing the mmap/munmap gap.

   A consumer that maps and unmaps address space directly (bypassing the
   heap allocator) can recreate use-after-free through address reuse.
   Reservations guard partially-unmapped ranges, and fully-unmapped
   reservations are painted and quarantined until a revocation pass has
   swept any surviving capabilities to them.

     dune exec examples/munmap_quarantine.exe *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Reservation = Vm.Reservation

let page = Vm.Phys.page_size

let () =
  let config =
    { M.default_config with heap_bytes = 8 lsl 20; mem_bytes = 32 lsl 20 }
  in
  let rt = Runtime.create ~config (Runtime.Safe Revoker.Reloaded) in
  let m = rt.Runtime.machine in
  let rv = Option.get rt.Runtime.revoker in
  let mq = Ccr.Munmap.create rv in
  ignore
    (M.spawn m ~name:"main" ~core:3 (fun ctx ->
         (* mmap: a 4-page file-copy style mapping high in the heap region *)
         let base = (M.layout m).Vm.Layout.heap_base + (1 lsl 21) in
         M.map ctx ~vaddr:base ~len:(4 * page) ~writable:true;
         let resv = Reservation.make ~base ~length:(4 * page) in
         let cap =
           Cap.restrict_perms
             (Cap.set_bounds (Cap.root ~length:(1 lsl 32)) ~base
                ~length:(4 * page))
             Cheri.Perms.read_write
         in
         M.store_u64 ctx cap 0xf11eL;
         Format.printf "mapped %a via a reservation@." Cap.pp cap;
         (* a dangling alias of the mapping, held in heap memory *)
         let holder = Runtime.malloc rt ctx 16 in
         M.store_cap ctx holder cap;

         (* munmap the middle two pages: the hole becomes guarded, so no
            later mmap can alias it *)
         Reservation.unmap_part resv ~off:page ~len:(2 * page);
         Format.printf "partial munmap: %a@." Reservation.pp resv;
         Format.printf "  hole guarded: %b; edges still mapped: %b@."
           (Reservation.is_guarded resv (base + page))
           (not (Reservation.is_guarded resv base));

         (* unmap the rest: the reservation is fully quarantined *)
         Reservation.unmap_part resv ~off:0 ~len:page;
         Reservation.unmap_part resv ~off:(3 * page) ~len:page;
         Ccr.Munmap.quarantine mq ctx resv;
         Format.printf "fully unmapped: %a (pending releases: %d)@."
           Reservation.pp resv (Ccr.Munmap.pending mq);

         (* the address space is NOT reusable yet *)
         assert (Ccr.Munmap.poll mq ctx = 0);

         (* churn the heap until a revocation epoch closes over it *)
         let painted_at = Ccr.Epoch.counter (Revoker.epoch rv) in
         while not (Ccr.Epoch.is_clean (Revoker.epoch rv) ~painted_at) do
           let c = Runtime.malloc rt ctx 512 in
           Runtime.free rt ctx c
         done;
         let released = Ccr.Munmap.poll mq ctx in
         Format.printf
           "after %d revocation epoch(s): released %d reservation(s): %a@."
           (Revoker.revocation_count rv) released Reservation.pp resv;
         let stale = M.load_cap ctx holder in
         Format.printf
           "the dangling mapping capability was revoked by the sweep: tagged=%b@."
           (Cap.tag stale);
         assert (not (Cap.tag stale));
         Runtime.finish rt ctx));
  M.run m
