examples/quickstart.ml: Ccr Cheri Format List Option Sim
