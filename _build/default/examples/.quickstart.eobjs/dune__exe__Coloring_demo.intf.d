examples/coloring_demo.mli:
