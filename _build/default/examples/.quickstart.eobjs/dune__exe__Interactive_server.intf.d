examples/interactive_server.mli:
