examples/uaf_attack.ml: Ccr Cheri Format Int64 List Option Printf Sim
