examples/munmap_quarantine.ml: Ccr Cheri Format Option Sim Vm
