examples/interactive_server.ml: Array Ccr Format List Printf Stats Workload
