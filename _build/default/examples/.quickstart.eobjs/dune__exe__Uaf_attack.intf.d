examples/uaf_attack.mli:
