examples/munmap_quarantine.mli:
