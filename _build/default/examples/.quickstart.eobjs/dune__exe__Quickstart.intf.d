examples/quickstart.mli:
