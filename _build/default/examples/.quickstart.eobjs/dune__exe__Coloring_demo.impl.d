examples/coloring_demo.ml: Ccr Format List Option Sim Stats
