(* A use-after-reallocation attack, run against every temporal-safety
   strategy. The attacker frees an object, keeps a stale capability in a
   register, waits for the allocator to hand the memory to a victim, and
   tries to read the victim's secret through the stale pointer.

   Quarantine alone ("paint+sync") lets the attack through; every
   sweeping revoker stops it; CHERIoT's load filter stops even the
   pre-reallocation *use*-after-free.

     dune exec examples/uaf_attack.exe *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker

let secret = 0x5ec2e7c0ffeeL

let attack strategy =
  let config =
    { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }
  in
  let rt = Runtime.create ~config (Runtime.Safe strategy) in
  let m = rt.Runtime.machine in
  let verdict = ref "did not run" in
  ignore
    (M.spawn m ~name:"attacker" ~core:3 (fun ctx ->
         let regs = M.regs (M.self ctx) in
         let rv = Option.get rt.Runtime.revoker in

         (* 1. allocate and free, keeping the capability *)
         let stale = Runtime.malloc rt ctx 256 in
         Sim.Regfile.set regs 5 stale;
         let painted_at = Ccr.Epoch.counter (Revoker.epoch rv) in
         Runtime.free rt ctx stale;

         (* 2. wait out the quarantine *)
         while not (Ccr.Epoch.is_clean (Revoker.epoch rv) ~painted_at) do
           let c = Runtime.malloc rt ctx 256 in
           Runtime.free rt ctx c
         done;

         (* 3. spray until the victim's allocation lands on our address *)
         let victim = ref Cap.null in
         let tries = ref 0 in
         while (not (Cap.tag !victim)) && !tries < 5000 do
           incr tries;
           let c = Runtime.malloc rt ctx 256 in
           if Cap.base c = Cap.base stale then victim := c
         done;
         if not (Cap.tag !victim) then verdict := "inconclusive (no overlap)"
         else begin
           M.store_u64 ctx !victim secret;
           (* 4. read through the stale register-held capability *)
           let s = Sim.Regfile.get regs 5 in
           match M.load_u64 ctx s with
           | v when Int64.equal v secret ->
               verdict := "LEAKED the victim's secret (attack succeeded)"
           | v -> verdict := Printf.sprintf "read garbage %Ld" v
           | exception M.Capability_fault _ ->
               verdict := "fail-stopped (attack defeated)"
         end;
         Runtime.finish rt ctx));
  M.run m;
  !verdict

let () =
  Format.printf "use-after-reallocation attack, per strategy:@.@.";
  List.iter
    (fun s ->
      Format.printf "  %-11s -> %s@." (Revoker.strategy_name s) (attack s))
    Revoker.extended_strategies;
  Format.printf
    "@.(paint+sync quarantines but never revokes: the one configuration@.\
    \ that lets the attack through is the one without sweeps.)@."
