lib/workload/spec.ml: Alloc Ccr Cheri Int64 Objtable Profile Result Sim
