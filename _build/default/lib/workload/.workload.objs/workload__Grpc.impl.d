lib/workload/grpc.ml: Alloc Array Ccr Cheri Int64 List Objtable Option Printf Result Sim
