lib/workload/profile.mli: Sim
