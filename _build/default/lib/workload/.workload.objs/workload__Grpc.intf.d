lib/workload/grpc.mli: Ccr Result Sim
