lib/workload/profile.ml: List Sim
