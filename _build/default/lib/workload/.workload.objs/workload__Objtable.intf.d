lib/workload/objtable.mli: Ccr Cheri Sim
