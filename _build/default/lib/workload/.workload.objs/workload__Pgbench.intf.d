lib/workload/pgbench.mli: Ccr Result Sim
