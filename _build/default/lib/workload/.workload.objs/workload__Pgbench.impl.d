lib/workload/pgbench.ml: Alloc Array Ccr Cheri Int64 Kernel List Objtable Printf Result Sim
