lib/workload/objtable.ml: Array Bytes Ccr Cheri Sim
