lib/workload/spec.mli: Ccr Profile Result Sim
