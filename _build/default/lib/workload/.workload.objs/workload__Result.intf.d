lib/workload/result.mli: Ccr Format
