lib/workload/result.ml: Ccr Format Sim
