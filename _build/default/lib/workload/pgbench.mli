(** The pgbench surrogate (§5.2 of the paper).

    A PostgreSQL-like server thread (core 3) processes TPC-B-ish
    transactions submitted serially by a client thread (core 0): per
    transaction, B-tree-style row lookups, three MVCC row updates (new
    version allocated, old freed), a history insert, a burst of
    parse/plan temporaries freed at commit, and a WAL write system call
    whose drain cost has a heavy tail (the §5.4.1 outlier mechanism).
    The revoker (if any) is pinned to core 2. The client thinks between
    transactions, so the server is on-core for roughly half the wall
    time, as in the paper.

    Latencies are measured by the client per transaction; with [rate]
    set, transactions are issued on a fixed schedule and latency is
    measured from the scheduled start, ignoring schedule lag (§5.2.1). *)

type config = {
  transactions : int;
  row_slots : int; (** database size, rows *)
  history_slots : int;
  temp_allocs_per_tx : int;
  row_reads_per_tx : int;
  updates_per_tx : int;
  compute_per_tx : int; (** cycles *)
  client_think : int; (** mean cycles between transactions *)
  warmup_fraction : float; (** initial transactions excluded from latency *)
  rate : float option; (** scheduled transactions per second *)
  seed : int;
}

val default_config : config

val run :
  ?config:config -> ?tracer:Sim.Trace.t -> mode:Ccr.Runtime.mode -> unit -> Result.t
(** [latencies_us] holds post-warmup per-transaction latencies;
    [throughput] is transactions per simulated second. *)
