(** Measurements collected from one workload run. *)

type t = {
  workload : string;
  mode : string;
  wall_cycles : int; (** application start-to-finish *)
  cpu_cycles : int; (** busy cycles summed over all cores *)
  app_cpu_cycles : int; (** the application thread(s) only *)
  bus_total : int; (** bus transactions, all cores *)
  bus_app_core : int; (** application core(s) only *)
  peak_rss_pages : int;
  clg_faults : int;
  ops_done : int;
  latencies_us : float array; (** per-event latencies (empty for batch) *)
  throughput : float; (** events per second where meaningful, else 0 *)
  scrub_bytes : int; (** bytes zeroed at reuse *)
  mrs : Ccr.Mrs.stats option;
  phases : Ccr.Revoker.phase_record list;
}

val wall_ms : t -> float
val pp_brief : Format.formatter -> t -> unit
