module Machine = Sim.Machine
module Prng = Sim.Prng

type profile = {
  service_mean : int;
  drain_scale : float;
  drain_shape : float;
  drain_cap : int;
}

let default_profile =
  {
    service_mean = 5_000;
    drain_scale = 2_000.0;
    drain_shape = 1.15;
    drain_cap = 50_000_000; (* 20 ms *)
  }

let light_profile =
  { service_mean = 1_000; drain_scale = 500.0; drain_shape = 1.5; drain_cap = 500_000 }

let draw_drain rng p =
  let d = Prng.pareto rng ~scale:p.drain_scale ~shape:p.drain_shape in
  min p.drain_cap (int_of_float d)

let perform_service ?(profile = default_profile) ctx ~service =
  let rng = Machine.prng (Machine.machine ctx) in
  Machine.enter_syscall ctx ~drain:(draw_drain rng profile);
  if service > 0 then Machine.sleep ctx service;
  Machine.exit_syscall ctx

let perform ?(profile = default_profile) ctx =
  let rng = Machine.prng (Machine.machine ctx) in
  let service = int_of_float (Prng.exponential rng ~mean:(float_of_int profile.service_mean)) in
  perform_service ~profile ctx ~service
