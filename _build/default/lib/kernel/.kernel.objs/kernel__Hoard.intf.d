lib/kernel/hoard.mli: Cheri Sim
