lib/kernel/syscall.ml: Sim
