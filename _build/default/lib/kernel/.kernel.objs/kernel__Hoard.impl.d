lib/kernel/hoard.ml: Cheri Hashtbl Sim
