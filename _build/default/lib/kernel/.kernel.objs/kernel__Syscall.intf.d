lib/kernel/syscall.mli: Sim
