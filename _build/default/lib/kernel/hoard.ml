module Capability = Cheri.Capability
module Machine = Sim.Machine
module Cost = Sim.Cost

type t = { caps : (int, Capability.t) Hashtbl.t; mutable next : int }

let create () = { caps = Hashtbl.create 64; next = 0 }

let register t ctx c =
  Machine.charge ctx Cost.syscall_entry;
  let h = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.caps h c;
  h

let retrieve t ctx h =
  Machine.charge ctx Cost.syscall_entry;
  match Hashtbl.find_opt t.caps h with
  | Some c -> c
  | None -> raise Not_found

let deregister t ctx h =
  Machine.charge ctx Cost.syscall_entry;
  Hashtbl.remove t.caps h

let scan t ~f =
  let n = Hashtbl.length t.caps in
  Hashtbl.iter
    (fun h c -> if Capability.tag c then Hashtbl.replace t.caps h (f c))
    t.caps;
  n

let size t = Hashtbl.length t.caps
