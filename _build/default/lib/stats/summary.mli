(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}

val of_list : float list -> t
(** Raises [Invalid_argument] on an empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation. *)

val mean : float list -> float
val geomean : float list -> float
(** Geometric mean; every sample must be positive. *)

val pp : Format.formatter -> t -> unit
