type t = {
  label : string;
  n : int;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}

let of_samples ~label = function
  | [] -> None
  | xs ->
      let s = Summary.of_list xs in
      Some
        {
          label;
          n = s.Summary.n;
          min = s.Summary.min;
          q1 = s.Summary.q1;
          median = s.Summary.median;
          q3 = s.Summary.q3;
          max = s.Summary.max;
        }

let render fmt ?(width = 60) ?(log = true) ~unit boxes =
  match boxes with
  | [] -> ()
  | _ ->
      let lo = List.fold_left (fun a b -> min a b.min) infinity boxes in
      let hi = List.fold_left (fun a b -> max a b.max) neg_infinity boxes in
      let lo = if log then max lo (max (hi /. 1e6) 1e-9) else lo in
      let hi = if hi <= lo then lo *. 10.0 else hi in
      let pos v =
        let v = max v lo in
        let frac =
          if log then Float.log (v /. lo) /. Float.log (hi /. lo)
          else (v -. lo) /. (hi -. lo)
        in
        let c = int_of_float (frac *. float_of_int (width - 1)) in
        max 0 (min (width - 1) c)
      in
      let lwidth =
        List.fold_left (fun a b -> max a (String.length b.label)) 0 boxes
      in
      List.iter
        (fun b ->
          let line = Bytes.make width ' ' in
          let put i ch = Bytes.set line i ch in
          for i = pos b.min to pos b.max do
            put i '-'
          done;
          for i = pos b.q1 to pos b.q3 do
            put i '='
          done;
          put (pos b.min) '|';
          put (pos b.max) '|';
          put (pos b.q1) '[';
          put (pos b.q3) ']';
          put (pos b.median) '#';
          Format.fprintf fmt "  %-*s |%s| med %s@." lwidth b.label
            (Bytes.to_string line)
            (Table.cell_f b.median))
        boxes;
      Format.fprintf fmt "  %-*s  %s%*s%s  (%s, %s axis)@." lwidth "" (Table.cell_f lo)
        (width - String.length (Table.cell_f lo) - String.length (Table.cell_f hi))
        "" (Table.cell_f hi) unit
        (if log then "log" else "linear")
