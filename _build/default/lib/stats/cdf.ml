type t = float array (* sorted samples *)

let of_samples xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a

let n t = Array.length t

(* binary search: count of samples <= x *)
let count_le t x =
  let lo = ref 0 and hi = ref (Array.length t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let at t x =
  if Array.length t = 0 then 0.0
  else float_of_int (count_le t x) /. float_of_int (Array.length t)

let inverse t q =
  let len = Array.length t in
  if len = 0 then invalid_arg "Cdf.inverse: empty";
  let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
  let idx = int_of_float (ceil (q *. float_of_int len)) - 1 in
  t.(max 0 (min (len - 1) idx))

let points t ?(resolution = 200) () =
  let len = Array.length t in
  if len = 0 then []
  else begin
    let step = max 1 (len / resolution) in
    let acc = ref [] in
    let i = ref 0 in
    while !i < len do
      acc := (t.(!i), float_of_int (!i + 1) /. float_of_int len) :: !acc;
      i := !i + step
    done;
    acc := (t.(len - 1), 1.0) :: !acc;
    List.rev !acc
  end

let render fmt ?(width = 72) ?(height = 16) curves =
  let curves = List.filter (fun (_, c) -> n c > 0) curves in
  if curves <> [] then begin
    let mins = List.map (fun (_, c) -> c.(0)) curves in
    let maxs = List.map (fun (_, c) -> c.(n c - 1)) curves in
    let lo = max 1e-9 (List.fold_left min infinity mins) in
    let hi = List.fold_left max 0.0 maxs in
    let hi = if hi <= lo then lo *. 10.0 else hi in
    let x_of col =
      lo *. ((hi /. lo) ** (float_of_int col /. float_of_int (width - 1)))
    in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun ci (_, c) ->
        let ch = Char.chr (Char.code 'a' + (ci mod 26)) in
        for col = 0 to width - 1 do
          let q = at c (x_of col) in
          let row = int_of_float (q *. float_of_int (height - 1)) in
          let row = height - 1 - max 0 (min (height - 1) row) in
          if grid.(row).(col) = ' ' then grid.(row).(col) <- ch
        done)
      curves;
    Array.iteri
      (fun i row ->
        let frac = 1.0 -. (float_of_int i /. float_of_int (height - 1)) in
        Format.fprintf fmt "%5.2f |%s@." frac (String.init width (Array.get row)))
      grid;
    Format.fprintf fmt "      %s@." (String.make width '-');
    Format.fprintf fmt "      %-10.3g%*s%10.3g (log scale)@." lo (width - 20) "" hi;
    List.iteri
      (fun ci (name, _) ->
        Format.fprintf fmt "      %c = %s@." (Char.chr (Char.code 'a' + (ci mod 26))) name)
      curves
  end
