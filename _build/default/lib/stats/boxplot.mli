(** Five-number summaries with ASCII rendering — the form of the paper's
    figure 9. *)

type t = {
  label : string;
  n : int;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}

val of_samples : label:string -> float list -> t option
(** [None] on an empty sample list. *)

val render :
  Format.formatter -> ?width:int -> ?log:bool -> unit:string -> t list -> unit
(** Draw the boxes on a shared axis:
    [      |----[  =  ]------|      ]
    whiskers at min/max, box q1..q3, [=] at the median. [log] (default
    true) uses a log axis, appropriate for phase times spanning orders of
    magnitude. *)
