type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let render fmt t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let emit row =
    let cells = List.mapi pad row in
    Format.fprintf fmt "| %s |@." (String.concat " | " cells)
  in
  emit t.header;
  let rule =
    Array.to_list (Array.map (fun w -> String.make w '-') widths)
  in
  emit rule;
  List.iter emit rows

let cell_f x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.2f" x

let cell_pct ratio =
  let pct = (ratio -. 1.0) *. 100.0 in
  Printf.sprintf "%+.1f%%" pct
