(** Empirical cumulative distribution functions (figure 7 of the paper). *)

type t

val of_samples : float list -> t
val n : t -> int

val at : t -> float -> float
(** [at cdf x] is the fraction of samples [<= x]. *)

val inverse : t -> float -> float
(** [inverse cdf q] with [q] in [\[0,1\]]: the smallest sample value at
    which the CDF reaches [q]. *)

val points : t -> ?resolution:int -> unit -> (float * float) list
(** Sampled [(value, fraction)] pairs suitable for plotting, deduplicated,
    at most [resolution] (default 200) points. *)

val render :
  Format.formatter ->
  ?width:int ->
  ?height:int ->
  (string * t) list ->
  unit
(** Crude ASCII rendering of several CDFs on a shared log-x axis. *)
