(** Plain-text table rendering for the benchmark harness. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val render : Format.formatter -> t -> unit

val cell_f : float -> string
(** Format a float compactly ("12.3", "0.87"). *)

val cell_pct : float -> string
(** Format a ratio as a percentage ("+12.3%" for 1.123). *)
