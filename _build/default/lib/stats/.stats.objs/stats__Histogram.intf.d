lib/stats/histogram.mli:
