lib/stats/boxplot.ml: Bytes Float Format List String Summary Table
