lib/stats/cdf.ml: Array Char Format List String
