type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}

let percentile_sorted a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let percentile xs p =
  let a = Array.of_list xs in
  Array.sort compare a;
  percentile_sorted a p

let mean xs =
  match xs with
  | [] -> invalid_arg "Summary.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  match xs with
  | [] -> invalid_arg "Summary.geomean: empty"
  | _ ->
      let sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Summary.geomean: non-positive sample";
            acc +. log x)
          0.0 xs
      in
      exp (sum /. float_of_int (List.length xs))

let of_list xs =
  let a = Array.of_list xs in
  if Array.length a = 0 then invalid_arg "Summary.of_list: empty";
  Array.sort compare a;
  let n = Array.length a in
  let mu = mean xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.0)) 0.0 a /. float_of_int n
  in
  {
    n;
    mean = mu;
    stddev = sqrt var;
    min = a.(0);
    q1 = percentile_sorted a 25.0;
    median = percentile_sorted a 50.0;
    q3 = percentile_sorted a 75.0;
    max = a.(n - 1);
  }

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3g sd=%.3g min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g"
    t.n t.mean t.stddev t.min t.q1 t.median t.q3 t.max
