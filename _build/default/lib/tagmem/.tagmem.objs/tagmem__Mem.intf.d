lib/tagmem/mem.mli: Cheri
