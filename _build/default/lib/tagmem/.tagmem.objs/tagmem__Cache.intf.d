lib/tagmem/cache.mli:
