lib/tagmem/mem.ml: Array Bytes Char Cheri Int64 Printf
