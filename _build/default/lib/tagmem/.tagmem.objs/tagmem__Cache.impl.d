lib/tagmem/cache.ml: Array Bytes
