type t = { phys : Phys.t; layout : Layout.t; pmap : Pmap.t }

let create phys layout ~asid = { phys; layout; pmap = Pmap.create ~asid }
let pmap t = t.pmap
let layout t = t.layout
let phys t = t.phys
let page = Phys.page_size

let map_range t ~vaddr ~len ~writable =
  let first = vaddr / page and last = (vaddr + len - 1) / page in
  let fresh = ref 0 in
  for vp = first to last do
    if not (Pmap.mem t.pmap ~vpage:vp) then begin
      let frame = Phys.alloc_frame t.phys in
      Phys.zero_frame t.phys frame;
      let pte = Pte.make ~frame ~writable ~clg:(Pmap.generation t.pmap) in
      Pmap.enter t.pmap ~vpage:vp pte;
      incr fresh
    end
  done;
  !fresh

let unmap_range t ~vaddr ~len =
  let first = vaddr / page and last = (vaddr + len - 1) / page in
  let removed = ref [] in
  for vp = first to last do
    match Pmap.lookup t.pmap ~vpage:vp with
    | None -> ()
    | Some pte ->
        Phys.free_frame t.phys pte.Pte.frame;
        Pmap.remove t.pmap ~vpage:vp;
        removed := vp :: !removed
  done;
  List.rev !removed

let translate t va =
  match Pmap.lookup t.pmap ~vpage:(va / page) with
  | None -> None
  | Some pte -> Some (Phys.frame_addr pte.Pte.frame + (va land (page - 1)), pte)

let mapped_pages t = Pmap.page_count t.pmap
let resident_bytes t = mapped_pages t * page
