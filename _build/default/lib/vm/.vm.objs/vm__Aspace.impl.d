lib/vm/aspace.ml: Layout List Phys Pmap Pte
