lib/vm/pte.mli: Format
