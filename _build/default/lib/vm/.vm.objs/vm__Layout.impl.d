lib/vm/layout.ml: Format Phys
