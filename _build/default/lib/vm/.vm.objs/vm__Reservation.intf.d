lib/vm/reservation.mli: Format
