lib/vm/pmap.mli: Pte
