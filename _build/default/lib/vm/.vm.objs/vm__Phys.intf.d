lib/vm/phys.mli: Tagmem
