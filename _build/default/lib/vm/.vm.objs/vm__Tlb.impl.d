lib/vm/tlb.ml: Array Pte
