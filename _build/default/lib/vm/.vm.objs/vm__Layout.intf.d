lib/vm/layout.mli: Format
