lib/vm/pmap.ml: Hashtbl List Pte
