lib/vm/reservation.ml: Bytes Format Phys
