lib/vm/aspace.mli: Layout Phys Pmap Pte
