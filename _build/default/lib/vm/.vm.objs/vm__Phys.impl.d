lib/vm/phys.ml: Tagmem
