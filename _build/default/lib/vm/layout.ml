type t = {
  heap_base : int;
  heap_limit : int;
  shadow_base : int;
  shadow_limit : int;
  hoard_base : int;
  hoard_limit : int;
}

let page = Phys.page_size
let align_up x = (x + page - 1) / page * page

let make ~heap_bytes =
  let heap_bytes = align_up (max heap_bytes page) in
  let heap_base = page in
  (* one bit per granule = heap/128 bytes of bitmap *)
  let shadow_bytes = align_up (heap_bytes / 128 + 1) in
  let shadow_base = heap_base + heap_bytes + page (* guard *) in
  let hoard_base = shadow_base + shadow_bytes + page in
  {
    heap_base;
    heap_limit = heap_base + heap_bytes;
    shadow_base;
    shadow_limit = shadow_base + shadow_bytes;
    hoard_base;
    hoard_limit = hoard_base + (16 * page);
  }

let heap_bytes t = t.heap_limit - t.heap_base

let shadow_addr_of_heap t va =
  assert (va >= t.heap_base && va < t.heap_limit);
  t.shadow_base + ((va - t.heap_base) / 128)

let shadow_bit_of_heap va = va / 16 land 7
let contains_heap t va = va >= t.heap_base && va < t.heap_limit

let pp fmt t =
  Format.fprintf fmt "heap [%#x,%#x) shadow [%#x,%#x) hoard [%#x,%#x)"
    t.heap_base t.heap_limit t.shadow_base t.shadow_limit t.hoard_base
    t.hoard_limit
