let page_size = 4096
let page_shift = 12

type t = {
  mem : Tagmem.Mem.t;
  total : int;
  mutable free : int list;
  mutable nfree : int;
}

let create mem =
  let total = Tagmem.Mem.size mem / page_size in
  let rec frames i acc = if i < 0 then acc else frames (i - 1) (i :: acc) in
  { mem; total; free = frames (total - 1) []; nfree = total }

let mem t = t.mem
let total_frames t = t.total
let free_frames t = t.nfree

let alloc_frame t =
  match t.free with
  | [] -> raise Out_of_memory
  | f :: rest ->
      t.free <- rest;
      t.nfree <- t.nfree - 1;
      f

let free_frame t f =
  assert (f >= 0 && f < t.total);
  t.free <- f :: t.free;
  t.nfree <- t.nfree + 1

let frame_addr f = f lsl page_shift

let zero_frame t f =
  let lo = frame_addr f in
  Tagmem.Mem.fill t.mem ~lo ~hi:(lo + page_size) 0
