(** mmap reservations (§6.2 of the paper).

    Capabilities returned by [mmap] are backed by a {e reservation}. When
    part of a reservation is unmapped, the addresses are backed by guard
    pages until the whole reservation is gone, so holes can never be
    refilled by later mappings (which would create address aliasing and
    hence use-after-free). Fully-unmapped reservations are quarantined
    and released only after a revocation pass. *)

type state =
  | Active (** some pages still mapped *)
  | Quarantined (** fully unmapped, awaiting revocation *)
  | Released (** revoked; address space reusable *)

type t

val make : base:int -> length:int -> t
val base : t -> int
val length : t -> int
val state : t -> state

val unmap_part : t -> off:int -> len:int -> unit
(** Turn part of the reservation into guard pages. When the last mapped
    byte goes away the reservation transitions to [Quarantined]. Raises
    [Invalid_argument] if the range is outside the reservation. *)

val is_guarded : t -> int -> bool
(** Whether the given address (within the reservation) is guard-backed. *)

val release : t -> unit
(** Mark revoked ([Quarantined] → [Released]); raises on other states. *)

val pp : Format.formatter -> t -> unit
