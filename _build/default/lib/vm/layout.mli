(** Address-space layout.

    A fixed, simple layout: a null guard page, the heap region, the
    kernel-provided revocation ("shadow") bitmap region covering the heap
    at one bit per 16-byte granule, and a small region for kernel hoard
    pages. All boundaries are page-aligned. *)

type t = {
  heap_base : int;
  heap_limit : int; (** exclusive *)
  shadow_base : int;
  shadow_limit : int;
  hoard_base : int;
  hoard_limit : int;
}

val make : heap_bytes:int -> t
(** [make ~heap_bytes] computes a layout for a heap of at most
    [heap_bytes] (rounded up to pages). *)

val heap_bytes : t -> int

val shadow_addr_of_heap : t -> int -> int
(** Virtual address of the shadow-bitmap {e byte} describing the granule
    at the given heap virtual address. One bitmap byte covers 8 granules
    (128 heap bytes). *)

val shadow_bit_of_heap : int -> int
(** Bit index (0–7) within that byte. *)

val contains_heap : t -> int -> bool
val pp : Format.formatter -> t -> unit
