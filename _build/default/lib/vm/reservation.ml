type state = Active | Quarantined | Released

type t = {
  base : int;
  length : int;
  guarded : Bytes.t; (* one flag per page *)
  mutable mapped_pages : int;
  mutable state : state;
}

let page = Phys.page_size

let make ~base ~length =
  if base land (page - 1) <> 0 || length <= 0 || length land (page - 1) <> 0 then
    invalid_arg "Reservation.make: page alignment";
  let n = length / page in
  { base; length; guarded = Bytes.make n '\000'; mapped_pages = n; state = Active }

let base t = t.base
let length t = t.length
let state t = t.state

let unmap_part t ~off ~len =
  if off < 0 || len <= 0 || off + len > t.length
     || off land (page - 1) <> 0 || len land (page - 1) <> 0
  then invalid_arg "Reservation.unmap_part: bad range";
  if t.state <> Active then invalid_arg "Reservation.unmap_part: not active";
  for p = off / page to (off + len) / page - 1 do
    if Bytes.get t.guarded p = '\000' then begin
      Bytes.set t.guarded p '\001';
      t.mapped_pages <- t.mapped_pages - 1
    end
  done;
  if t.mapped_pages = 0 then t.state <- Quarantined

let is_guarded t addr =
  if addr < t.base || addr >= t.base + t.length then
    invalid_arg "Reservation.is_guarded: outside reservation";
  t.state <> Active || Bytes.get t.guarded ((addr - t.base) / page) = '\001'

let release t =
  if t.state <> Quarantined then invalid_arg "Reservation.release: not quarantined";
  t.state <- Released

let pp fmt t =
  let s =
    match t.state with
    | Active -> "active"
    | Quarantined -> "quarantined"
    | Released -> "released"
  in
  Format.fprintf fmt "resv[%#x,+%#x) %s mapped=%d" t.base t.length s t.mapped_pages
