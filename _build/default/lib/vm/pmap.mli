(** Per-address-space page table ("pmap", after the FreeBSD layer the
    paper's implementation lives in).

    Maps virtual page numbers to {!Pte.t}. The pmap carries the
    address-space-wide capability-load-generation value that newly
    installed PTEs adopt, and a cooperative lock whose acquisitions the
    machine layer charges for (§4.3: a faulting thread locks the pmap
    twice; sweeps lock it around PTE updates). *)

type t

val create : asid:int -> t
val asid : t -> int

val enter : t -> vpage:int -> Pte.t -> unit
val remove : t -> vpage:int -> unit
val lookup : t -> vpage:int -> Pte.t option
val mem : t -> vpage:int -> bool
val page_count : t -> int

val fold : t -> init:'a -> f:(int -> Pte.t -> 'a -> 'a) -> 'a
val iter : t -> f:(int -> Pte.t -> unit) -> unit

val sorted_vpages : t -> int list
(** All mapped virtual page numbers, ascending — the background revoker's
    visit order. *)

(** {1 Generation} *)

val generation : t -> bool
(** The generation value PTEs of this address space are converging to. *)

val set_generation : t -> bool -> unit

(** {1 Lock} *)

val lock : t -> who:int -> bool
(** Acquire; returns [true] if the lock was contended (caller charges
    extra cycles). Re-entrant acquisition by the same owner is a
    programming error and raises. With the simulator's cooperative
    scheduling the lock can never be observed held by a parked thread at
    a blocking point, so acquisition always succeeds; contention is
    recorded for statistics only. *)

val unlock : t -> who:int -> unit
val lock_acquisitions : t -> int

(** {1 Busy marker} *)

val busy : t -> unit
(** Mark the address space busy (held across concurrent revocation
    phases; excludes fork-like bulk operations, §4.3). *)

val unbusy : t -> unit
val is_busy : t -> bool
