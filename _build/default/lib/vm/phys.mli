(** Physical frame allocator.

    Hands out page frames over a {!Tagmem.Mem.t}. Frames are recycled
    LIFO; freed frames are {e not} zeroed here — zeroing policy (and its
    cost) belongs to the kernel/allocator layers. *)

type t

val page_size : int (** 4096 *)

val page_shift : int

val create : Tagmem.Mem.t -> t
(** Manage every whole frame of the given memory. *)

val mem : t -> Tagmem.Mem.t
val total_frames : t -> int
val free_frames : t -> int

val alloc_frame : t -> int
(** Returns a frame number. Raises [Out_of_memory] when exhausted. *)

val free_frame : t -> int -> unit
val frame_addr : int -> int
(** Physical byte address of a frame's first byte. *)

val zero_frame : t -> int -> unit
(** Zero the frame's bytes and clear its tags. *)
