type t = {
  asid : int;
  pages : (int, Pte.t) Hashtbl.t;
  mutable generation : bool;
  mutable lock_holder : int option;
  mutable lock_acquisitions : int;
  mutable contended : int;
  mutable busy_count : int;
}

let create ~asid =
  {
    asid;
    pages = Hashtbl.create 1024;
    generation = false;
    lock_holder = None;
    lock_acquisitions = 0;
    contended = 0;
    busy_count = 0;
  }

let asid t = t.asid
let enter t ~vpage pte = Hashtbl.replace t.pages vpage pte
let remove t ~vpage = Hashtbl.remove t.pages vpage
let lookup t ~vpage = Hashtbl.find_opt t.pages vpage
let mem t ~vpage = Hashtbl.mem t.pages vpage
let page_count t = Hashtbl.length t.pages
let fold t ~init ~f = Hashtbl.fold f t.pages init
let iter t ~f = Hashtbl.iter f t.pages

let sorted_vpages t =
  let l = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  List.sort compare l

let generation t = t.generation
let set_generation t g = t.generation <- g

let lock t ~who =
  match t.lock_holder with
  | Some owner when owner = who -> invalid_arg "Pmap.lock: re-entrant acquisition"
  | Some _ ->
      (* Cooperative scheduling: the previous holder must have released at
         its last safe point; observing a holder here means contention. *)
      t.contended <- t.contended + 1;
      t.lock_holder <- Some who;
      t.lock_acquisitions <- t.lock_acquisitions + 1;
      true
  | None ->
      t.lock_holder <- Some who;
      t.lock_acquisitions <- t.lock_acquisitions + 1;
      false

let unlock t ~who =
  match t.lock_holder with
  | Some owner when owner = who -> t.lock_holder <- None
  | _ -> invalid_arg "Pmap.unlock: not the holder"

let lock_acquisitions t = t.lock_acquisitions
let busy t = t.busy_count <- t.busy_count + 1

let unbusy t =
  if t.busy_count <= 0 then invalid_arg "Pmap.unbusy: not busy";
  t.busy_count <- t.busy_count - 1

let is_busy t = t.busy_count > 0
