type t = {
  tag : bool;
  base : int;
  length : int;
  addr : int;
  perms : Perms.t;
  otype : int; (* 0 = unsealed *)
}

let null = { tag = false; base = 0; length = 0; addr = 0; perms = Perms.empty; otype = 0 }

let root ~length =
  { tag = true; base = 0; length; addr = 0; perms = Perms.all; otype = 0 }

let tag c = c.tag
let base c = c.base
let length c = c.length
let top c = c.base + c.length
let addr c = c.addr
let perms c = c.perms
let otype c = c.otype
let is_sealed c = c.otype <> 0

let in_bounds ?(width = 1) c =
  width >= 1 && c.addr >= c.base && c.addr + width <= top c

let untag c = { c with tag = false }

let set_bounds_gen ~exact c ~base ~length =
  if length < 0 || base < 0 then untag { c with base; length = max length 0; addr = base }
  else
    let base', length' = Compress.representable ~base ~length in
    let fits = base' >= c.base && base' + length' <= top c in
    let ok =
      c.tag && not (is_sealed c) && fits
      && (not exact || (base' = base && length' = length))
    in
    { c with tag = ok; base = base'; length = length'; addr = base }

let set_bounds c ~base ~length = set_bounds_gen ~exact:false c ~base ~length
let set_bounds_exact c ~base ~length = set_bounds_gen ~exact:true c ~base ~length

let set_addr c a =
  if not c.tag then { c with addr = a }
  else if is_sealed c then untag { c with addr = a }
  else
    let lo, hi = Compress.representable_window ~base:c.base ~length:c.length in
    { c with addr = a; tag = a >= lo && a < hi }

let incr_addr c delta = set_addr c (c.addr + delta)
let restrict_perms c p = { c with perms = Perms.inter c.perms p }
let clear_perm c p = { c with perms = Perms.remove c.perms p }
let clear_tag = untag

let seal c ~otype =
  if c.tag && (not (is_sealed c)) && otype > 0 then { c with otype }
  else untag { c with otype = max otype 0 }

let unseal c ~otype =
  if c.tag && c.otype = otype && otype > 0 then { c with otype = 0 }
  else untag c

let deref_ok ?(width = 1) c perm =
  c.tag && (not (is_sealed c)) && Perms.mem c.perms perm && in_bounds ~width c

let can_load ?width c = deref_ok ?width c Perms.load
let can_store ?width c = deref_ok ?width c Perms.store

let can_load_cap c =
  deref_ok ~width:16 c (Perms.union Perms.load Perms.load_cap)

let can_store_cap c =
  deref_ok ~width:16 c (Perms.union Perms.store Perms.store_cap)

let is_subset c parent =
  c.base >= parent.base && top c <= top parent
  && Perms.subset c.perms parent.perms

let equal a b =
  a.tag = b.tag && a.base = b.base && a.length = b.length && a.addr = b.addr
  && Perms.equal a.perms b.perms && a.otype = b.otype

let pp fmt c =
  Format.fprintf fmt "%c[%#x,%#x)@%#x %a%s"
    (if c.tag then 'v' else 'x')
    c.base (top c) c.addr Perms.pp c.perms
    (if is_sealed c then Printf.sprintf " sealed:%d" c.otype else "")
