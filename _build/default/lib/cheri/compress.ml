let mantissa_width = 14

(* Smallest e >= 0 with length <= (2^mantissa_width - 1) * 2^e; for e = 0
   any length below 2^mw is exact without alignment constraints. *)
let exponent_for_length len =
  if len < 1 lsl mantissa_width then 0
  else
    let max_mantissa = (1 lsl mantissa_width) - 1 in
    let rec go e =
      if len <= max_mantissa lsl e then e else go (e + 1)
    in
    go 1

let align_down x a = x land lnot (a - 1)
let align_up x a = (x + a - 1) land lnot (a - 1)

let representable ~base ~length =
  let e = exponent_for_length length in
  if e = 0 then (base, length)
  else
    let a = 1 lsl e in
    let base' = align_down base a in
    let top' = align_up (base + length) a in
    (base', top' - base')

let is_exact ~base ~length =
  let base', length' = representable ~base ~length in
  base' = base && length' = length

let required_alignment len = 1 lsl exponent_for_length len

let round_length len =
  let a = required_alignment len in
  align_up len a

(* Representable space beyond the bounds: one quarter of the region size
   below base and above top, with a 2 KiB floor. CHERI Concentrate's true
   window is asymmetric and encoding-dependent; the quarter-size model
   keeps the property the revoker relies on: the base never moves, and far
   out-of-bounds arithmetic strips the tag. *)
let representable_window ~base ~length =
  let base', length' = representable ~base ~length in
  let slack = max 2048 (length' / 4) in
  (max 0 (base' - slack), base' + length' + slack)
