(** Capability permission bits.

    A permission set controls which operations a capability authorizes.
    Permission sets are monotone: derivation may only clear bits, never set
    them. This mirrors the architectural permission field of CHERI
    capabilities (Morello / CHERI-RISC-V), restricted to the bits the
    revocation machinery cares about. *)

type t
(** An immutable set of permission bits. *)

val empty : t
(** No permissions at all. *)

val all : t
(** Every permission; the root capability carries this. *)

(** {1 Individual permissions} *)

val load : t
(** Authorizes data loads through the capability. *)

val store : t
(** Authorizes data stores through the capability. *)

val load_cap : t
(** Authorizes loading {e tagged capabilities} through the capability. *)

val store_cap : t
(** Authorizes storing tagged capabilities through the capability. *)

val execute : t
(** Authorizes instruction fetch (unused by the revoker, present for
    model completeness). *)

val global : t
(** Marks a capability as storable anywhere ("global", as opposed to
    stack-local). *)

val seal : t
(** Authorizes sealing other capabilities. *)

val read_write : t
(** [load + store + load_cap + store_cap + global]: what a heap allocator
    hands out. *)

(** {1 Set operations} *)

val union : t -> t -> t
val inter : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is [true] iff every permission in [a] is also in [b]. *)

val remove : t -> t -> t
(** [remove p victim] clears the bits of [victim] from [p]. *)

val mem : t -> t -> bool
(** [mem p bit] tests whether all bits of [bit] are present in [p]. *)

val equal : t -> t -> bool
val to_int : t -> int
val of_int : int -> t
val pp : Format.formatter -> t -> unit
