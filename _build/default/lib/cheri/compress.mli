(** CHERI-Concentrate-style bounds compression model.

    Real CHERI capabilities store bounds in a compressed floating-point
    format: a mantissa of [mantissa_width] bits and an exponent. Regions
    whose length exceeds what the mantissa can express exactly must have
    base and top aligned to [2^e], so requested bounds are {e padded}
    outwards. Allocators must therefore round allocation sizes up so that
    the returned capability's bounds exactly cover the allocation and
    cannot reach into a neighbour (Woodruff et al., "CHERI Concentrate").

    This module reproduces the alignment/padding arithmetic; it does not
    model the bit-level encoding. *)

val mantissa_width : int
(** Number of mantissa bits (14, as in 128-bit Morello capabilities). *)

val exponent_for_length : int -> int
(** [exponent_for_length len] is the smallest exponent [e] such that a
    region of [len] bytes can be represented with base and top aligned to
    [2^e]. Zero when the length is exactly representable unaligned. *)

val representable : base:int -> length:int -> int * int
(** [representable ~base ~length] is [(base', length')], the smallest
    representable region containing [\[base, base+length)]. [base' <= base]
    and [base' + length' >= base + length]. *)

val is_exact : base:int -> length:int -> bool
(** Whether [\[base, base+length)] is representable without padding. *)

val required_alignment : int -> int
(** [required_alignment len] is the byte alignment an allocator must give
    a block of [len] bytes so its bounds are exact ([2^e]). *)

val round_length : int -> int
(** [round_length len] rounds [len] up to the next length representable
    exactly when suitably aligned. *)

val representable_window : base:int -> length:int -> int * int
(** [(lo, hi)] such that a capability with the given bounds keeps its tag
    while its address stays within [\[lo, hi)]. Out-of-bounds roaming is
    permitted within the representable space around the bounds; going
    beyond strips the tag (monotonicity is preserved because the bounds
    themselves never move). *)
