lib/cheri/perms.ml: Format Int List
