lib/cheri/perms.mli: Format
