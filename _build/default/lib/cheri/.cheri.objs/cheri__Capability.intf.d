lib/cheri/capability.mli: Format Perms
