lib/cheri/compress.mli:
