lib/cheri/capability.ml: Compress Format Perms Printf
