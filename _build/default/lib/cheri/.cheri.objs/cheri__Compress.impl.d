lib/cheri/compress.ml:
