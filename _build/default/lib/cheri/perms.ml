type t = int

let empty = 0
let load = 1
let store = 2
let load_cap = 4
let store_cap = 8
let execute = 16
let global = 32
let seal = 64
let all = load lor store lor load_cap lor store_cap lor execute lor global lor seal
let read_write = load lor store lor load_cap lor store_cap lor global
let union = ( lor )
let inter = ( land )
let subset a b = a land lnot b = 0
let remove p victim = p land lnot victim
let mem p bit = p land bit = bit
let equal = Int.equal
let to_int p = p
let of_int i = i land all

let pp fmt p =
  let bits =
    [ (load, "R"); (store, "W"); (load_cap, "r"); (store_cap, "w");
      (execute, "X"); (global, "G"); (seal, "S") ]
  in
  let present = List.filter (fun (b, _) -> mem p b) bits in
  if present = [] then Format.pp_print_string fmt "-"
  else List.iter (fun (_, s) -> Format.pp_print_string fmt s) present
