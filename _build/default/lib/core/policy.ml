type t = { fraction : float; min_quarantine : int; block_factor : float }

let default = { fraction = 0.25; min_quarantine = 128 * 1024; block_factor = 2.0 }
let with_min t min_quarantine = { t with min_quarantine }
let with_fraction t fraction = { t with fraction }

let threshold t ~live ~quarantine =
  let total = live + quarantine in
  max t.min_quarantine (int_of_float (t.fraction *. float_of_int total))

let should_revoke t ~live ~quarantine = quarantine > threshold t ~live ~quarantine

let should_block t ~live ~quarantine =
  float_of_int quarantine
  > t.block_factor *. float_of_int (threshold t ~live ~quarantine)
