(** Composing CHERI revocation with memory coloring (§7.3 of the paper).

    Each allocation carries a {e color} (a few metadata bits per memory
    granule, as in Arm MTE — but here under CHERI's integrity protection,
    so colors need not be secret). [free] normally just {e re-colors} the
    memory and returns it for immediate reuse: stale capabilities carry
    the old color and every access through them fail-stops. Only when a
    block has exhausted its color space does it fall back to the painted
    quarantine + revocation path, so revocation pressure drops by roughly
    the number of colors.

    Colors are modelled at the allocator interface: allocations are
    handed out as {!colored} capabilities and accessed through {!load}/
    {!store}, which enforce the color check. The underlying revocation
    machinery is the wrapped {!Mrs} shim. *)

type t

type colored = { cap : Cheri.Capability.t; color : int }

exception
  Color_mismatch of { addr : int; cap_color : int; mem_color : int }
(** The fail-stop event: an access through a stale (re-colored)
    capability. *)

val create : Sim.Machine.t -> mrs:Mrs.t -> colors:int -> t
(** [colors] must be at least 2 (one live + one free at any time);
    MTE-like hardware has 16. *)

val colors : t -> int
val malloc : t -> Sim.Machine.ctx -> int -> colored
val free : t -> Sim.Machine.ctx -> colored -> unit
(** Re-color and release for immediate reuse, or — when the block's color
    space is exhausted — paint and quarantine via the wrapped shim.
    Raises {!Color_mismatch} on a double free (the stale color gives it
    away). *)

val load : t -> Sim.Machine.ctx -> colored -> int64
val store : t -> Sim.Machine.ctx -> colored -> int64 -> unit
(** Color-checked accesses at the capability's current address. *)

(** {1 Statistics} *)

val recolor_frees : t -> int
(** Frees served by re-coloring alone (no quarantine). *)

val quarantine_frees : t -> int
(** Frees that exhausted the color space and went to quarantine. *)

val faults_stopped : t -> int
(** Accesses rejected by the color check so far. *)
