module Capability = Cheri.Capability
module Machine = Sim.Machine

type colored = { cap : Capability.t; color : int }

exception
  Color_mismatch of { addr : int; cap_color : int; mem_color : int }

(* per-block color state, keyed by block base address *)
type block = { mutable color : int; mutable used : int }

type t = {
  m : Machine.t;
  mrs : Mrs.t;
  ncolors : int;
  blocks : (int, block) Hashtbl.t;
  exhausted : (int, unit) Hashtbl.t; (* bases gone through quarantine *)
  mutable recolor_frees : int;
  mutable quarantine_frees : int;
  mutable faults : int;
}

let create m ~mrs ~colors =
  if colors < 2 then invalid_arg "Coloring.create: need at least 2 colors";
  {
    m;
    mrs;
    ncolors = colors;
    blocks = Hashtbl.create 4096;
    exhausted = Hashtbl.create 256;
    recolor_frees = 0;
    quarantine_frees = 0;
    faults = 0;
  }

let colors t = t.ncolors

(* Setting a granule's color is a streaming store of metadata; charge one
   cycle per 64-byte line, folded into allocation/free fast paths. *)
let recolor_cost size = max 1 (size / 64)

let malloc t ctx size =
  let cap = Mrs.malloc t.mrs ctx size in
  let base = Capability.base cap in
  let blk =
    match Hashtbl.find_opt t.blocks base with
    | Some blk when not (Hashtbl.mem t.exhausted base) -> blk
    | Some blk ->
        (* the block came back through revocation: its stale capabilities
           are gone, so the color space restarts *)
        Hashtbl.remove t.exhausted base;
        blk.color <- 0;
        blk.used <- 0;
        blk
    | None ->
        let blk = { color = 0; used = 0 } in
        Hashtbl.replace t.blocks base blk;
        blk
  in
  Machine.charge ctx (recolor_cost (Capability.length cap));
  { cap; color = blk.color }

let block_of t (c : colored) op =
  match Hashtbl.find_opt t.blocks (Capability.base c.cap) with
  | Some blk -> blk
  | None ->
      invalid_arg (Printf.sprintf "Coloring.%s: unknown block %#x" op
                     (Capability.base c.cap))

let check t (c : colored) blk =
  if c.color <> blk.color then begin
    t.faults <- t.faults + 1;
    raise
      (Color_mismatch
         { addr = Capability.addr c.cap; cap_color = c.color; mem_color = blk.color })
  end

let free t ctx (c : colored) =
  let blk = block_of t c "free" in
  check t c blk;
  blk.used <- blk.used + 1;
  if blk.used < t.ncolors then begin
    (* rotate the color and hand the memory straight back: stale
       capabilities now fail-stop on access, no quarantine needed *)
    blk.color <- blk.used;
    Machine.charge ctx (recolor_cost (Capability.length c.cap));
    (Mrs.allocator t.mrs).Alloc.Backend.free ctx c.cap;
    t.recolor_frees <- t.recolor_frees + 1
  end
  else begin
    Hashtbl.replace t.exhausted (Capability.base c.cap) ();
    Mrs.free t.mrs ctx c.cap;
    t.quarantine_frees <- t.quarantine_frees + 1
  end

let load t ctx (c : colored) =
  let blk = block_of t c "load" in
  check t c blk;
  Machine.charge ctx 1;
  Machine.load_u64 ctx c.cap

let store t ctx (c : colored) v =
  let blk = block_of t c "store" in
  check t c blk;
  Machine.charge ctx 1;
  Machine.store_u64 ctx c.cap v

let recolor_frees t = t.recolor_frees
let quarantine_frees t = t.quarantine_frees
let faults_stopped t = t.faults
