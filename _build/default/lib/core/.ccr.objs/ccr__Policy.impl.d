lib/core/policy.ml:
