lib/core/munmap.mli: Revoker Sim Vm
