lib/core/revmap.ml: Cheri Int64 Sim Tagmem Vm
