lib/core/revoker.ml: Array Cheri Epoch Hashtbl Kernel List Printf Revmap Sim Sweep Vm
