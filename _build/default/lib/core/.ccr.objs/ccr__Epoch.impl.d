lib/core/epoch.ml: Sim
