lib/core/mrs.mli: Alloc Cheri Policy Revoker Sim
