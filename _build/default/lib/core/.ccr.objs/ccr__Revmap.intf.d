lib/core/revmap.mli: Cheri Sim
