lib/core/coloring.ml: Alloc Cheri Hashtbl Mrs Printf Sim
