lib/core/runtime.mli: Alloc Cheri Kernel Mrs Policy Revoker Sim
