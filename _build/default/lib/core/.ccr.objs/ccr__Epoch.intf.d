lib/core/epoch.mli: Sim
