lib/core/sweep.mli: Kernel Revmap Sim Vm
