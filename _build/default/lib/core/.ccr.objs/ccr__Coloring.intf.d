lib/core/coloring.mli: Cheri Mrs Sim
