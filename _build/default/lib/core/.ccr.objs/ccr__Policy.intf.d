lib/core/policy.mli:
