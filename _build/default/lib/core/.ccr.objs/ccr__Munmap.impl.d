lib/core/munmap.ml: Epoch List Revmap Revoker Sim Vm
