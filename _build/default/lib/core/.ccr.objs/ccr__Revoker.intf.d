lib/core/revoker.mli: Epoch Kernel Revmap Sim
