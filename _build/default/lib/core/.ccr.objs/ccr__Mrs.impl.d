lib/core/mrs.ml: Alloc Cheri Epoch Hashtbl List Policy Revmap Revoker Sim
