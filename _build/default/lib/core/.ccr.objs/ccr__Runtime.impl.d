lib/core/runtime.ml: Alloc Kernel List Mrs Option Policy Revoker Sim
