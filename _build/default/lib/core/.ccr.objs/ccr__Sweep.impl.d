lib/core/sweep.ml: Cheri Kernel Revmap Sim Tagmem Vm
