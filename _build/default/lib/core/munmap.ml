module Machine = Sim.Machine
module Reservation = Vm.Reservation

type entry = { resv : Reservation.t; painted_at : int }
type t = { revoker : Revoker.t; mutable pending : entry list }

let create revoker = { revoker; pending = [] }

let quarantine t ctx resv =
  if Reservation.state resv <> Reservation.Quarantined then
    invalid_arg "Munmap.quarantine: reservation still has mapped pages";
  Revmap.paint (Revoker.revmap t.revoker) ctx ~addr:(Reservation.base resv)
    ~size:(Reservation.length resv);
  let painted_at = Epoch.counter (Revoker.epoch t.revoker) in
  t.pending <- { resv; painted_at } :: t.pending

let poll t ctx =
  let epoch = Revoker.epoch t.revoker in
  let ready, waiting =
    List.partition (fun e -> Epoch.is_clean epoch ~painted_at:e.painted_at) t.pending
  in
  List.iter
    (fun e ->
      Revmap.clear (Revoker.revmap t.revoker) ctx ~addr:(Reservation.base e.resv)
        ~size:(Reservation.length e.resv);
      Reservation.release e.resv)
    ready;
  t.pending <- waiting;
  List.length ready

let pending t = List.length t.pending
