(** Unmapped-memory quarantine (§6.2 of the paper).

    snmalloc never returns address space, but other [mmap] consumers do.
    Reservations ({!Vm.Reservation}) guarantee that partially-unmapped
    ranges are guard-backed; once a reservation is {e fully} unmapped it
    is painted into the revocation bitmap and held here until a
    revocation epoch has closed over it, at which point its address
    space may be released for reuse. Together with reservations this
    removes the [mmap]/[munmap] gap in CHERIvoke's and Cornucopia's
    protection. *)

type t

val create : Revoker.t -> t

val quarantine : t -> Sim.Machine.ctx -> Vm.Reservation.t -> unit
(** Accept a fully-unmapped reservation: paint its range and remember
    the epoch at which it was enqueued. Raises [Invalid_argument] if the
    reservation is not in the [Quarantined] state or lies outside the
    heap region. *)

val poll : t -> Sim.Machine.ctx -> int
(** Release every reservation whose enqueue epoch is clean
    ({!Epoch.is_clean}): clear its paint and mark it [Released]. Returns
    the number released. *)

val pending : t -> int
