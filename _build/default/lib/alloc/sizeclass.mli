(** Allocation size classes (snmalloc-style).

    Small sizes are served from per-class slabs carved out of 64 KiB
    chunks; sizes above {!large_threshold} are "large" and served as
    whole-page spans. Every class size is a multiple of the 16-byte tag
    granule and exactly representable under {!Cheri.Compress}, so bounds
    on returned capabilities are always precise — a requirement for
    revocation (an imprecise base would make the shadow-bitmap probe
    test the wrong bit). *)

val granule : int (** 16 *)

val large_threshold : int (** 16 KiB *)

val num_classes : int

val size_of_class : int -> int
(** Slot size of a class index; raises on out-of-range. *)

val class_of_size : int -> int option
(** Smallest class fitting a request, or [None] if large. *)

val round_large : int -> int
(** Page- and representability-rounded size for a large request. *)

val rounded_size : int -> int
(** The actual number of bytes a request of the given size occupies. *)
