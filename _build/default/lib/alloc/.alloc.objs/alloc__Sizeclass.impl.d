lib/alloc/sizeclass.ml: Array Cheri List Vm
