lib/alloc/jemalloc.ml: Array Bytes Cheri Hashtbl List Option Printf Sim Sizeclass Vm
