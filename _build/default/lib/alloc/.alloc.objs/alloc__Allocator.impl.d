lib/alloc/allocator.ml: Array Cheri Hashtbl Option Printf Sim Sizeclass Vm
