lib/alloc/allocator.mli: Cheri Sim
