lib/alloc/jemalloc.mli: Cheri Sim
