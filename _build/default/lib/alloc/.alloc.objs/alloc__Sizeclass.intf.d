lib/alloc/sizeclass.mli:
