lib/alloc/backend.mli: Allocator Cheri Jemalloc Sim
