lib/alloc/backend.ml: Allocator Cheri Jemalloc Sim
