lib/machine/regfile.mli: Cheri
