lib/machine/regfile.ml: Array Cheri
