lib/machine/trace.ml: Array Format List
