lib/machine/machine.ml: Array Buffer Cheri Cost Effect Fun List Printf Prng Regfile Sys Tagmem Trace Vm
