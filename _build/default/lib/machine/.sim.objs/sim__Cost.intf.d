lib/machine/cost.mli:
