lib/machine/cost.ml:
