lib/machine/prng.mli:
