lib/machine/machine.mli: Cheri Prng Regfile Tagmem Trace Vm
