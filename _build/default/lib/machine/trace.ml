type kind =
  | Stw_request
  | Stw_stopped
  | Stw_release
  | Clg_fault
  | Context_switch
  | Epoch_begin
  | Epoch_end
  | Revoke_batch
  | Custom of string

let kind_name = function
  | Stw_request -> "stw-request"
  | Stw_stopped -> "stw-stopped"
  | Stw_release -> "stw-release"
  | Clg_fault -> "clg-fault"
  | Context_switch -> "context-switch"
  | Epoch_begin -> "epoch-begin"
  | Epoch_end -> "epoch-end"
  | Revoke_batch -> "revoke-batch"
  | Custom s -> s

type event = { time : int; core : int; kind : kind; arg : int }

type t = {
  ring : event array;
  mutable next : int; (* total emitted *)
}

let dummy = { time = 0; core = -1; kind = Custom "empty"; arg = 0 }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  { ring = Array.make capacity dummy; next = 0 }

let emit t ~time ~core kind arg =
  t.ring.(t.next mod Array.length t.ring) <- { time; core; kind; arg };
  t.next <- t.next + 1

let length t = min t.next (Array.length t.ring)
let dropped t = max 0 (t.next - Array.length t.ring)

let to_list t =
  let cap = Array.length t.ring in
  let n = length t in
  let first = t.next - n in
  List.init n (fun i -> t.ring.((first + i) mod cap))

let iter t f = List.iter f (to_list t)
let clear t = t.next <- 0

let pp_event fmt e =
  Format.fprintf fmt "%12d c%d %-14s %#x" e.time e.core (kind_name e.kind) e.arg

let dump fmt ?last t =
  let events = to_list t in
  let events =
    match last with
    | None -> events
    | Some n ->
        let len = List.length events in
        List.filteri (fun i _ -> i >= len - n) events
  in
  if dropped t > 0 then Format.fprintf fmt "(%d older events dropped)@." (dropped t);
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) events
