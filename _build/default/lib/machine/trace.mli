(** Bounded event tracing.

    A fixed-capacity ring of timestamped events, cheap enough to leave
    attached to a machine during benchmarking. The machine emits
    scheduler- and barrier-level events when a tracer is attached
    ({!Machine.attach_tracer}); higher layers (the revoker, the shim) may
    emit their own through the same recorder. *)

type kind =
  | Stw_request
  | Stw_stopped
  | Stw_release
  | Clg_fault
  | Context_switch
  | Epoch_begin
  | Epoch_end
  | Revoke_batch
  | Custom of string

val kind_name : kind -> string

type event = {
  time : int; (** cycles, initiator's core clock *)
  core : int;
  kind : kind;
  arg : int; (** kind-specific: vaddr, counter value, bytes, ... *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events; older events are overwritten. *)

val emit : t -> time:int -> core:int -> kind -> int -> unit
val length : t -> int
(** Events currently retained (≤ capacity). *)

val dropped : t -> int
(** Events overwritten since creation. *)

val to_list : t -> event list
(** Retained events, oldest first. *)

val iter : t -> (event -> unit) -> unit
val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val dump : Format.formatter -> ?last:int -> t -> unit
(** Print the most recent [last] events (default: all retained). *)
