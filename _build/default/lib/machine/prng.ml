type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (Int64.logxor (next t) 0xA5A5A5A5DEADBEEFL) }

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

let float t bound =
  let u =
    Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0
  in
  u *. bound

let bool t = Int64.logand (next t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pareto t ~scale ~shape =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  scale /. (u ** (1.0 /. shape))

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then 1e-12 else u in
    int_of_float (log u /. log (1.0 -. p))
