(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator draws from an explicit
    generator so whole runs are reproducible from a seed. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent stream derived from the current state. *)

val next : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]; [n > 0]. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val pareto : t -> scale:float -> shape:float -> float
(** Heavy-tailed draw, [>= scale]. Used for syscall drain tails. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success; [0 < p <= 1]. *)
