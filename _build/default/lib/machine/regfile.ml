module Capability = Cheri.Capability

type t = Capability.t array

let registers = 32
let create () = Array.make registers Capability.null

let get t i =
  if i < 0 || i >= registers then invalid_arg "Regfile.get";
  t.(i)

let set t i c =
  if i < 0 || i >= registers then invalid_arg "Regfile.set";
  t.(i) <- c

let clear t = Array.fill t 0 registers Capability.null
let iteri t f = Array.iteri f t

let map_tagged t f =
  let changed = ref 0 in
  for i = 0 to registers - 1 do
    if Capability.tag t.(i) then begin
      let c' = f t.(i) in
      if not (Capability.equal c' t.(i)) then begin
        t.(i) <- c';
        incr changed
      end
    end
  done;
  !changed

let copy_into ~src ~dst = Array.blit src 0 dst 0 registers
