(** Capability register file.

    Each simulated thread owns one. Simulated programs must keep every
    capability they hold across a safe point either in their register file
    or in simulated memory — that is what makes the revoker's
    stop-the-world register scan (§3.2, §4.4 of the paper) meaningful. *)

type t

val registers : int
(** Number of capability registers (32). *)

val create : unit -> t
val get : t -> int -> Cheri.Capability.t
val set : t -> int -> Cheri.Capability.t -> unit
val clear : t -> unit

val iteri : t -> (int -> Cheri.Capability.t -> unit) -> unit

val map_tagged : t -> (Cheri.Capability.t -> Cheri.Capability.t) -> int
(** Apply a function to every tagged register (the revoker scan);
    returns how many registers were modified. *)

val copy_into : src:t -> dst:t -> unit
