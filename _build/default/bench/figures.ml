(* One regeneration function per table and figure of the paper's
   evaluation, plus the ablation benches DESIGN.md calls for. Measured
   values come from the shared campaign; paper values (where the paper
   quotes them numerically) are printed alongside. *)

module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Result = Workload.Result
module Table = Stats.Table
module Summary = Stats.Summary
open Campaign

let fmt = Format.std_formatter

let section title note =
  Format.fprintf fmt "@.=== %s ===@." title;
  if note <> "" then Format.fprintf fmt "%s@." note;
  Format.fprintf fmt "@."

let paper_cell = function Some v -> Printf.sprintf "%.1f" v | None -> "-"

(* ---------- Figure 1: SPEC wall-clock overheads ---------- *)

let fig1 c =
  section "Figure 1: SPEC CPU2006 wall-clock overhead vs spatially-safe baseline (%)"
    "(bzip2 and sjeng do not engage revocation, as in the paper)";
  let tbl =
    Table.create
      ~header:
        [ "benchmark"; "paint+sync"; "cherivoke"; "cornucopia"; "reloaded";
          "paper corn."; "paper rel." ]
  in
  List.iter
    (fun name ->
      let base = (spec c ~workload:name ~mode:"baseline").Result.wall_cycles in
      let ov mode =
        overhead_pct ~test:(spec c ~workload:name ~mode).Result.wall_cycles ~base
      in
      Table.add_row tbl
        [
          name;
          Table.cell_f (ov "paint+sync");
          Table.cell_f (ov "cherivoke");
          Table.cell_f (ov "cornucopia");
          Table.cell_f (ov "reloaded");
          paper_cell (Paper.fig1_wall_overhead_pct (name, "cornucopia"));
          paper_cell (Paper.fig1_wall_overhead_pct (name, "reloaded"));
        ])
    spec_names;
  (* geomeans over the revoking set *)
  let geo mode =
    Summary.geomean
      (List.map
         (fun name ->
           let base = (spec c ~workload:name ~mode:"baseline").Result.wall_cycles in
           ratio ~test:(spec c ~workload:name ~mode).Result.wall_cycles ~base)
         revoking_names)
  in
  Table.add_row tbl
    [
      "geomean(revoking)";
      Table.cell_pct (geo "paint+sync");
      Table.cell_pct (geo "cherivoke");
      Table.cell_pct (geo "cornucopia");
      Table.cell_pct (geo "reloaded");
      "-";
      "-";
    ];
  Table.render fmt tbl

(* ---------- Figure 2: SPEC total CPU-time overheads ---------- *)

let fig2 c =
  section "Figure 2: SPEC total CPU-time overhead, all cores (%)"
    "(Cornucopia burns the most CPU; Reloaded matches or beats it; paper fig. 2)";
  let tbl =
    Table.create
      ~header:[ "benchmark"; "paint+sync"; "cherivoke"; "cornucopia"; "reloaded" ]
  in
  List.iter
    (fun name ->
      let base = (spec c ~workload:name ~mode:"baseline").Result.cpu_cycles in
      let ov mode =
        overhead_pct ~test:(spec c ~workload:name ~mode).Result.cpu_cycles ~base
      in
      Table.add_row tbl
        [
          name;
          Table.cell_f (ov "paint+sync");
          Table.cell_f (ov "cherivoke");
          Table.cell_f (ov "cornucopia");
          Table.cell_f (ov "reloaded");
        ])
    revoking_names;
  Table.render fmt tbl

(* ---------- Figure 3: peak RSS ratios ---------- *)

let fig3 c =
  section "Figure 3: peak memory footprint (RSS) ratio vs baseline"
    "(policy targets 1.33x — quarantine is 1/3 of the allocated heap; \
     libquantum/omnetpp/xalancbmk overshoot as in the paper)";
  let subset =
    [ "xalancbmk"; "omnetpp"; "astar_lakes"; "libquantum"; "gobmk_trevord";
      "hmmer_nph3"; "hmmer_retro" ]
  in
  (* sorted descending by baseline RSS, as the paper plots it *)
  let subset =
    List.sort
      (fun a b ->
        compare
          (spec c ~workload:b ~mode:"baseline").Result.peak_rss_pages
          (spec c ~workload:a ~mode:"baseline").Result.peak_rss_pages)
      subset
  in
  let tbl =
    Table.create
      ~header:
        [ "benchmark"; "base RSS KiB"; "paint+sync"; "cherivoke"; "cornucopia";
          "reloaded" ]
  in
  List.iter
    (fun name ->
      let base = (spec c ~workload:name ~mode:"baseline").Result.peak_rss_pages in
      let rat mode =
        ratio ~test:(spec c ~workload:name ~mode).Result.peak_rss_pages ~base
      in
      Table.add_row tbl
        [
          name;
          string_of_int (base * 4);
          Table.cell_f (rat "paint+sync");
          Table.cell_f (rat "cherivoke");
          Table.cell_f (rat "cornucopia");
          Table.cell_f (rat "reloaded");
        ])
    subset;
  Table.render fmt tbl

(* ---------- Figure 4: SPEC bus-traffic overheads ---------- *)

let fig4 c =
  section "Figure 4: SPEC bus-traffic overhead (%) and Reloaded/Cornucopia ratio"
    "(paper: Reloaded's traffic is median 87% of Cornucopia's)";
  let tbl =
    Table.create
      ~header:
        [ "benchmark"; "cherivoke %"; "cornucopia %"; "reloaded %"; "rel/corn";
          "paper rel/corn" ]
  in
  let ratios = ref [] in
  List.iter
    (fun name ->
      let base = (spec c ~workload:name ~mode:"baseline").Result.bus_total in
      let bus mode = (spec c ~workload:name ~mode).Result.bus_total in
      let rel_corn =
        float_of_int (bus "reloaded" - base) /. float_of_int (bus "cornucopia" - base)
      in
      ratios := rel_corn :: !ratios;
      Table.add_row tbl
        [
          name;
          Table.cell_f (overhead_pct ~test:(bus "cherivoke") ~base);
          Table.cell_f (overhead_pct ~test:(bus "cornucopia") ~base);
          Table.cell_f (overhead_pct ~test:(bus "reloaded") ~base);
          Table.cell_f rel_corn;
          (match Paper.fig4_reloaded_vs_cornucopia name with
          | Some v -> Table.cell_f v
          | None -> "-");
        ])
    revoking_names;
  Table.render fmt tbl;
  Format.fprintf fmt
    "median reloaded/cornucopia overhead-traffic ratio: %.2f (paper: %.2f)@."
    (Summary.percentile !ratios 50.0)
    Paper.fig4_median_ratio

(* ---------- Figure 5: pgbench time overheads ---------- *)

let fig5 c =
  section "Figure 5: pgbench normalized time overheads (%)"
    "(Reloaded's wall and total-CPU overheads sit below Cornucopia's; \
     server-thread CPU is nearly identical — paper fig. 5)";
  let base = interactive c ~workload:"pgbench" ~mode:"baseline" in
  let tbl =
    Table.create ~header:[ "mode"; "wall %"; "server CPU %"; "total CPU %" ]
  in
  List.iter
    (fun mode ->
      let r = interactive c ~workload:"pgbench" ~mode in
      Table.add_row tbl
        [
          mode;
          Table.cell_f (overhead_pct ~test:r.Result.wall_cycles ~base:base.Result.wall_cycles);
          Table.cell_f
            (overhead_pct ~test:r.Result.app_cpu_cycles ~base:base.Result.app_cpu_cycles);
          Table.cell_f (overhead_pct ~test:r.Result.cpu_cycles ~base:base.Result.cpu_cycles);
        ])
    (List.tl mode_names);
  Table.render fmt tbl

(* ---------- Figure 6: pgbench bus overheads ---------- *)

let fig6 c =
  section "Figure 6: pgbench normalized bus-access overheads (%)"
    "(paper: Reloaded incurs less than half Cornucopia's traffic overhead, \
     slightly increasing the application core's)";
  let base = interactive c ~workload:"pgbench" ~mode:"baseline" in
  (* each component's extra traffic expressed as a percentage of the
     BASELINE TOTAL, so the columns stack like the paper's bars *)
  let tbl =
    Table.create
      ~header:[ "mode"; "app core (pts)"; "other cores (pts)"; "total %" ]
  in
  List.iter
    (fun mode ->
      let r = interactive c ~workload:"pgbench" ~mode in
      let other (x : Result.t) = x.Result.bus_total - x.Result.bus_app_core in
      let pts delta = 100.0 *. float_of_int delta /. float_of_int base.Result.bus_total in
      Table.add_row tbl
        [
          mode;
          Table.cell_f (pts (r.Result.bus_app_core - base.Result.bus_app_core));
          Table.cell_f (pts (other r - other base));
          Table.cell_f (overhead_pct ~test:r.Result.bus_total ~base:base.Result.bus_total);
        ])
    (List.tl mode_names);
  Table.render fmt tbl

(* ---------- Figure 7: pgbench latency CDF ---------- *)

let fig7 c =
  section "Figure 7: pgbench per-transaction latency distribution"
    "(identical to ~p85; strategies separate from p90; the paper's p99-p50 \
     gaps are 27 / ~10 / 5.4 ms for CHERIvoke / Cornucopia / Reloaded — at \
     our 1/64 heap scale pauses shrink proportionally)";
  let tbl =
    Table.create
      ~header:
        [ "mode"; "p50 us"; "p85"; "p90"; "p99"; "p99.9"; "p99-p50 us";
          "paper p99-p50 ms"; "median STW us"; "paper STW ms" ]
  in
  List.iter
    (fun mode ->
      let r = interactive c ~workload:"pgbench" ~mode in
      let p = pct r in
      let stw_us =
        Sim.Cost.cycles_to_us
          (int_of_float (phase_median r.Result.phases (fun x -> x.Revoker.stw_cycles)))
      in
      let fault_us =
        Sim.Cost.cycles_to_us
          (int_of_float (phase_median r.Result.phases (fun x -> x.Revoker.fault_cycles)))
      in
      Table.add_row tbl
        [
          mode;
          Table.cell_f (p 50.0);
          Table.cell_f (p 85.0);
          Table.cell_f (p 90.0);
          Table.cell_f (p 99.0);
          Table.cell_f (p 99.9);
          Table.cell_f (p 99.0 -. p 50.0);
          paper_cell (Paper.fig7_p99_minus_median_ms mode);
          (if mode = "reloaded" then
             Printf.sprintf "%s (+%s flt)" (Table.cell_f stw_us) (Table.cell_f fault_us)
           else Table.cell_f stw_us);
          (match Paper.fig7_median_stw_ms mode with
          | Some v when v < 0.01 -> Printf.sprintf "%.2f (faults)" (v *. 1000.0)
          | Some v -> Printf.sprintf "%.1f" v
          | None -> "-");
        ])
    mode_names;
  Table.render fmt tbl;
  Format.fprintf fmt "@.";
  let curves =
    List.map
      (fun mode ->
        let r = interactive c ~workload:"pgbench" ~mode in
        (mode, Stats.Cdf.of_samples (Array.to_list r.Result.latencies_us)))
      mode_names
  in
  Stats.Cdf.render fmt curves

(* ---------- Figure 8: gRPC QPS latency percentiles ---------- *)

let fig8 c =
  section "Figure 8: gRPC QPS throughput and latency percentile ratios vs baseline"
    "(paper: QPS drops ~12.8% under either concurrent strategy; at p99 \
     Reloaded doubles latency where Cornucopia more than triples it; at \
     p99.9 both are pathological)";
  let base = interactive c ~workload:"grpc_qps" ~mode:"baseline" in
  let tbl =
    Table.create
      ~header:
        [ "mode"; "QPS"; "drop %"; "paper drop %"; "p50 x"; "p90 x"; "p95 x";
          "p99 x"; "p99.9 x"; "paper p99 x"; "paper p99.9 x" ]
  in
  List.iter
    (fun mode ->
      let r = interactive c ~workload:"grpc_qps" ~mode in
      let rx q = pct r q /. pct base q in
      Table.add_row tbl
        [
          mode;
          Printf.sprintf "%.0f" r.Result.throughput;
          Table.cell_f
            ((1.0 -. (r.Result.throughput /. base.Result.throughput)) *. 100.0);
          paper_cell (Paper.fig8_qps_drop_pct mode);
          Table.cell_f (rx 50.0);
          Table.cell_f (rx 90.0);
          Table.cell_f (rx 95.0);
          Table.cell_f (rx 99.0);
          Table.cell_f (rx 99.9);
          (match Paper.fig8_latency_ratio (mode, 99.0) with
          | Some v -> Table.cell_f v
          | None -> "-");
          (match Paper.fig8_latency_ratio (mode, 99.9) with
          | Some v -> Table.cell_f v
          | None -> "-");
        ])
    (List.filter (fun m -> m <> "baseline") mode_names);
  Table.render fmt tbl

(* ---------- Figure 9: revocation phase times ---------- *)

let fig9 c =
  section "Figure 9: revocation phase times (per-epoch medians, us)"
    "(columns per paper: CHERIvoke's single world-stopped phase; \
     Cornucopia's concurrent + world-stopped; Reloaded's world-stopped + \
     concurrent + cumulative application-thread faults)";
  let tbl =
    Table.create
      ~header:
        [ "workload"; "chv STW"; "corn conc"; "corn STW"; "rel STW"; "rel conc";
          "rel faults"; "rel max STW" ]
  in
  let phase r f =
    Sim.Cost.cycles_to_us (int_of_float (phase_median r.Result.phases f))
  in
  let row name fetch =
    let chv = fetch "cherivoke" in
    let corn = fetch "cornucopia" in
    let rel = fetch "reloaded" in
    let max_stw =
      List.fold_left
        (fun acc p -> max acc p.Revoker.stw_cycles)
        0 rel.Result.phases
    in
    Table.add_row tbl
      [
        name;
        Table.cell_f (phase chv (fun x -> x.Revoker.stw_cycles));
        Table.cell_f (phase corn (fun x -> x.Revoker.concurrent_cycles));
        Table.cell_f (phase corn (fun x -> x.Revoker.stw_cycles));
        Table.cell_f (phase rel (fun x -> x.Revoker.stw_cycles));
        Table.cell_f (phase rel (fun x -> x.Revoker.concurrent_cycles));
        Table.cell_f (phase rel (fun x -> x.Revoker.fault_cycles));
        Table.cell_f (Sim.Cost.cycles_to_us max_stw);
      ]
  in
  List.iter
    (fun name -> row name (fun mode -> spec c ~workload:name ~mode))
    revoking_names;
  row "pgbench" (fun mode -> interactive c ~workload:"pgbench" ~mode);
  row "grpc_qps" (fun mode -> interactive c ~workload:"grpc_qps" ~mode);
  Table.render fmt tbl;
  Format.fprintf fmt
    "@.(paper: Reloaded STW is tens of us single-threaded, 323 us median for \
     multi-threaded gRPC,@. three-plus orders of magnitude under Cornucopia's \
     for memory-heavy workloads)@.";
  (* boxplots of the world-stopped distributions, the paper's plot form *)
  let boxes name fetch =
    List.filter_map
      (fun (label, mode, field) ->
        let r : Result.t = fetch mode in
        let samples =
          List.map
            (fun p -> Sim.Cost.cycles_to_us (field p))
            r.Result.phases
        in
        Stats.Boxplot.of_samples ~label:(Printf.sprintf "%s %s" name label) samples)
      [
        ("chv STW ", "cherivoke", fun p -> p.Revoker.stw_cycles);
        ("corn STW", "cornucopia", fun p -> p.Revoker.stw_cycles);
        ("rel STW ", "reloaded", fun p -> p.Revoker.stw_cycles);
        ("rel flts", "reloaded", fun p -> p.Revoker.fault_cycles);
      ]
  in
  Format.fprintf fmt "@.world-stopped (and Reloaded cumulative-fault) distributions:@.@.";
  List.iter
    (fun name ->
      Stats.Boxplot.render fmt ~unit:"us"
        (boxes name (fun mode -> spec c ~workload:name ~mode));
      Format.fprintf fmt "@.")
    [ "xalancbmk"; "omnetpp" ];
  Stats.Boxplot.render fmt ~unit:"us"
    (boxes "pgbench" (fun mode -> interactive c ~workload:"pgbench" ~mode));
  Format.fprintf fmt "@.";
  Stats.Boxplot.render fmt ~unit:"us"
    (boxes "grpc_qps" (fun mode -> interactive c ~workload:"grpc_qps" ~mode))

(* ---------- Table 1: pgbench under fixed-rate schedules ---------- *)

let tab1 c =
  section "Table 1: pgbench latency percentiles under fixed-rate schedules (Reloaded)"
    "(rates chosen as the same fractions of peak throughput as the paper's \
     100/150/250 of 284 tx/s; latencies in us at 1/64 scale vs the paper's ms)";
  ensure_pgbench c;
  let unsched = interactive c ~workload:"pgbench" ~mode:"reloaded" in
  let peak = unsched.Result.throughput in
  let tbl =
    Table.create
      ~header:[ "tx/s"; "p50"; "p90"; "p95"; "p99"; "p99.9"; "paper (ms @ rate)" ]
  in
  let fractions = List.map (fun (r, _) -> r /. Paper.table1_max_rate) Paper.table1 in
  List.iter2
    (fun frac (paper_rate, paper_row) ->
      let rate = frac *. peak in
      let config =
        {
          Workload.Pgbench.default_config with
          Workload.Pgbench.transactions =
            int_of_float (4000.0 *. c.scale) |> max 1200;
          rate = Some rate;
          seed = c.seed;
        }
      in
      let r =
        Workload.Pgbench.run ~config ~mode:(Runtime.Safe Revoker.Reloaded) ()
      in
      Table.add_row tbl
        ([ Printf.sprintf "%.0f" rate ]
        @ List.map (fun q -> Table.cell_f (pct r q)) Paper.table1_percentiles
        @ [
            Printf.sprintf "%s @ %.0f/s"
              (String.concat "/" (List.map (Printf.sprintf "%.2g") paper_row))
              paper_rate;
          ]))
    fractions Paper.table1;
  Table.add_row tbl
    ([ "unscheduled" ]
    @ List.map (fun q -> Table.cell_f (pct unsched q)) Paper.table1_percentiles
    @ [
        Printf.sprintf "%s @ 284/s"
          (String.concat "/" (List.map (Printf.sprintf "%.2g") Paper.table1_unscheduled));
      ]);
  Table.render fmt tbl

(* ---------- Table 2: revocation rate statistics ---------- *)

let tab2 c =
  section "Table 2: Reloaded revocation-rate statistics"
    "(byte quantities at 1/64 of the paper's; operation counts are further \
     scaled, so F:A and revocation counts scale with run length — the \
     cross-workload ordering is the reproduced quantity)";
  let tbl =
    Table.create
      ~header:
        [ "workload"; "mean alloc KiB"; "sum freed MiB"; "F:A"; "revocations";
          "rev/sec"; "paper F:A"; "paper rev/s" ]
  in
  let add name (r : Result.t) =
    match r.Result.mrs with
    | None -> ()
    | Some st ->
        let mean_alloc =
          match st.Ccr.Mrs.live_samples with
          | [] -> 0.0
          | l -> Summary.mean (List.map float_of_int l)
        in
        let freed = float_of_int st.Ccr.Mrs.sum_freed_bytes in
        let secs = float_of_int r.Result.wall_cycles /. Sim.Cost.clock_hz in
        let paper =
          List.find_opt (fun p -> p.Paper.t2_name = name) Paper.table2
        in
        Table.add_row tbl
          [
            name;
            Printf.sprintf "%.0f" (mean_alloc /. 1024.0);
            Printf.sprintf "%.1f" (freed /. 1048576.0);
            Printf.sprintf "%.1f" (if mean_alloc > 0.0 then freed /. mean_alloc else 0.0);
            string_of_int st.Ccr.Mrs.revocations;
            Printf.sprintf "%.1f" (float_of_int st.Ccr.Mrs.revocations /. secs);
            (match paper with
            | Some p -> Printf.sprintf "%.1f" p.Paper.t2_fa
            | None -> "-");
            (match paper with
            | Some p -> Printf.sprintf "%.2f" p.Paper.t2_rev_per_sec
            | None -> "-");
          ]
  in
  List.iter
    (fun name -> add name (spec c ~workload:name ~mode:"reloaded"))
    revoking_names;
  add "pgbench" (interactive c ~workload:"pgbench" ~mode:"reloaded");
  add "grpc_qps" (interactive c ~workload:"grpc_qps" ~mode:"reloaded");
  Table.render fmt tbl

(* ---------- Ablations ---------- *)

let ablation_policy c =
  section "Ablation: quarantine policy (§7.2) — omnetpp under Reloaded"
    "(larger quarantine fractions trade memory for fewer, bigger epochs)";
  let p = Workload.Profile.find "omnetpp" in
  let base =
    Workload.Spec.run ~seed:c.seed ~ops_scale:(c.scale /. 2.0)
      ~mode:Runtime.Baseline p
  in
  let tbl =
    Table.create
      ~header:[ "fraction"; "revocations"; "wall %"; "RSS ratio"; "bus %" ]
  in
  List.iter
    (fun frac ->
      let policy = Ccr.Policy.with_fraction Ccr.Policy.default frac in
      let r =
        Workload.Spec.run ~seed:c.seed ~ops_scale:(c.scale /. 2.0) ~policy
          ~mode:(Runtime.Safe Revoker.Reloaded) p
      in
      let revs = match r.Result.mrs with Some s -> s.Ccr.Mrs.revocations | None -> 0 in
      Table.add_row tbl
        [
          Printf.sprintf "%.2f" frac;
          string_of_int revs;
          Table.cell_f
            (overhead_pct ~test:r.Result.wall_cycles ~base:base.Result.wall_cycles);
          Table.cell_f
            (ratio ~test:r.Result.peak_rss_pages ~base:base.Result.peak_rss_pages);
          Table.cell_f (overhead_pct ~test:r.Result.bus_total ~base:base.Result.bus_total);
        ])
    [ 0.10; 0.25; 0.50 ];
  Table.render fmt tbl

let ablation_nt c =
  section "Ablation: non-temporal sweep loads (§5.6) — xalancbmk"
    "(bypassing allocation on sweep reads trades revoker-side cache reuse \
     for less pollution)";
  let p = Workload.Profile.find "xalancbmk" in
  let tbl = Table.create ~header:[ "sweep loads"; "wall ms"; "cpu ms"; "bus" ] in
  List.iter
    (fun (label, nt) ->
      let r =
        Workload.Spec.run ~seed:c.seed ~ops_scale:(c.scale /. 2.0) ~non_temporal:nt
          ~mode:(Runtime.Safe Revoker.Reloaded) p
      in
      Table.add_row tbl
        [
          label;
          Table.cell_f (Result.wall_ms r);
          Table.cell_f (Sim.Cost.cycles_to_ms r.Result.cpu_cycles);
          string_of_int r.Result.bus_total;
        ])
    [ ("cached", false); ("non-temporal", true) ];
  Table.render fmt tbl

let ablation_cheriot c =
  section "Ablation: trap-based load barrier vs CHERIoT-style load filter (§6.3)"
    "(the filter needs no generations, faults, or re-scans — at the price \
     of a bitmap probe on every capability load)";
  let p = Workload.Profile.find "omnetpp" in
  let base =
    Workload.Spec.run ~seed:c.seed ~ops_scale:(c.scale /. 2.0)
      ~mode:Runtime.Baseline p
  in
  let tbl =
    Table.create
      ~header:[ "mechanism"; "wall %"; "cpu %"; "bus %"; "clg faults" ]
  in
  List.iter
    (fun strategy ->
      let r =
        Workload.Spec.run ~seed:c.seed ~ops_scale:(c.scale /. 2.0)
          ~mode:(Runtime.Safe strategy) p
      in
      Table.add_row tbl
        [
          Revoker.strategy_name strategy;
          Table.cell_f
            (overhead_pct ~test:r.Result.wall_cycles ~base:base.Result.wall_cycles);
          Table.cell_f (overhead_pct ~test:r.Result.cpu_cycles ~base:base.Result.cpu_cycles);
          Table.cell_f (overhead_pct ~test:r.Result.bus_total ~base:base.Result.bus_total);
          string_of_int r.Result.clg_faults;
        ])
    [ Revoker.Reloaded; Revoker.Cheriot_filter ];
  Table.render fmt tbl

let ablation_clg _c =
  section "Ablation: in-core generation bit vs per-PTE barrier flag (§4.1)"
    "(updating every PTE with the world stopped is what the generation \
     scheme was designed to avoid)";
  let mk flag =
    let config =
      { Sim.Machine.default_config with heap_bytes = 8 lsl 20; mem_bytes = 32 lsl 20 }
    in
    let m = Sim.Machine.create config in
    let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
    let rv =
      Revoker.create m ~strategy:Revoker.Reloaded ~core:2
        ~pte_flag_barrier:flag ()
    in
    let mrs = Ccr.Mrs.create m ~alloc ~revoker:rv () in
    ignore
      (Sim.Machine.spawn m ~name:"app" ~core:3 (fun ctx ->
           for _ = 1 to 30_000 do
             let cp = Ccr.Mrs.malloc mrs ctx 512 in
             Sim.Machine.store_u64 ctx cp 1L;
             Ccr.Mrs.free mrs ctx cp
           done;
           Ccr.Mrs.finish mrs ctx));
    Sim.Machine.run m;
    let stws = List.map (fun r -> float_of_int r.Revoker.stw_cycles) (Revoker.records rv) in
    Summary.percentile stws 50.0
  in
  let tbl = Table.create ~header:[ "epoch start"; "median STW us" ] in
  Table.add_row tbl
    [ "toggle in-core generation"; Table.cell_f (Sim.Cost.cycles_to_us (int_of_float (mk false))) ];
  Table.add_row tbl
    [ "update every PTE (flag)"; Table.cell_f (Sim.Cost.cycles_to_us (int_of_float (mk true))) ];
  Table.render fmt tbl

let ablation_multibg c =
  section "Ablation: multi-threaded background revocation (§7.1) — xalancbmk"
    "(helpers on the idle cores shorten the concurrent phase)";
  let p = Workload.Profile.find "xalancbmk" in
  let tbl =
    Table.create ~header:[ "background threads"; "median conc ms"; "wall ms" ]
  in
  List.iter
    (fun n ->
      (* drive the revoker directly so we can pass background_threads *)
      let heap = Workload.Profile.heap_bytes_needed p in
      let config =
        {
          Sim.Machine.default_config with
          heap_bytes = heap;
          mem_bytes = heap + (heap / 16) + (8 * 1024 * 1024);
          seed = c.seed;
        }
      in
      let m = Sim.Machine.create config in
      let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
      let rv =
        Revoker.create m ~strategy:Revoker.Reloaded ~core:2
          ~background_threads:n ()
      in
      let mrs = Ccr.Mrs.create m ~alloc ~revoker:rv () in
      let wall = ref 0 in
      ignore
        (Sim.Machine.spawn m ~name:"app" ~core:3 (fun ctx ->
             let rng = Sim.Prng.create ~seed:77 in
             let table = Ccr.Mrs.malloc mrs ctx 4096 in
             let slot i =
               Cheri.Capability.set_addr table (Cheri.Capability.base table + (i * 16))
             in
             (* object bodies hold capabilities: their pages are sweep
                targets, so the background phase has real work to split *)
             let fresh () =
               let cp = Ccr.Mrs.malloc mrs ctx 512 in
               Sim.Machine.store_cap ctx
                 (Cheri.Capability.set_addr cp (Cheri.Capability.base cp))
                 table;
               cp
             in
             for i = 0 to 255 do
               Sim.Machine.store_cap ctx (slot i) (fresh ())
             done;
             for _ = 1 to int_of_float (60_000.0 *. c.scale) do
               let i = Sim.Prng.int rng 256 in
               let cp = Sim.Machine.load_cap ctx (slot i) in
               if Cheri.Capability.tag cp then Ccr.Mrs.free mrs ctx cp;
               Sim.Machine.store_cap ctx (slot i) (fresh ())
             done;
             wall := Sim.Machine.now ctx;
             Ccr.Mrs.finish mrs ctx));
      Sim.Machine.run m;
      let conc =
        match Revoker.records rv with
        | [] -> 0.0
        | rs ->
            Summary.percentile
              (List.map (fun x -> float_of_int x.Revoker.concurrent_cycles) rs)
              50.0
      in
      Table.add_row tbl
        [
          string_of_int n;
          Table.cell_f (Sim.Cost.cycles_to_ms (int_of_float conc));
          Table.cell_f (Sim.Cost.cycles_to_ms !wall);
        ])
    [ 1; 2; 3 ];
  Table.render fmt tbl

let ablation_allocator c =
  section "Ablation: allocator sensitivity (footnote 23, §10) — omnetpp, Reloaded"
    "(the paper evaluates with snmalloc but ships with jemalloc; footnote 23 \
     attributes up to 2x wall-clock swings to allocator choice alone)";
  let p = Workload.Profile.find "omnetpp" in
  let tbl =
    Table.create
      ~header:[ "allocator"; "mode"; "wall ms"; "bus"; "RSS pages"; "revocations" ]
  in
  List.iter
    (fun kind ->
      List.iter
        (fun mode ->
          let r =
            Workload.Spec.run ~seed:c.seed ~ops_scale:(c.scale /. 2.0)
              ~allocator:kind ~mode p
          in
          let revs =
            match r.Result.mrs with Some s -> s.Ccr.Mrs.revocations | None -> 0
          in
          Table.add_row tbl
            [
              (match kind with
              | Runtime.Snmalloc -> "snmalloc"
              | Runtime.Jemalloc -> "jemalloc");
              r.Result.mode;
              Table.cell_f (Result.wall_ms r);
              string_of_int r.Result.bus_total;
              string_of_int r.Result.peak_rss_pages;
              string_of_int revs;
            ])
        [ Runtime.Baseline; Runtime.Safe Revoker.Reloaded ])
    [ Runtime.Snmalloc; Runtime.Jemalloc ];
  Table.render fmt tbl

let ablation_coloring _c =
  section "Ablation: memory-coloring composition (§7.3)"
    "(with k colors only every k-th free reaches quarantine; stale accesses \
     fail-stop instantly instead of at the next epoch)";
  let run colors =
    let config =
      { Sim.Machine.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }
    in
    let rt = Runtime.create ~config (Runtime.Safe Revoker.Reloaded) in
    let mrs = Option.get rt.Runtime.mrs in
    let col = Ccr.Coloring.create rt.Runtime.machine ~mrs ~colors in
    let out = ref (0, 0) in
    ignore
      (Sim.Machine.spawn rt.Runtime.machine ~name:"app" ~core:3 (fun ctx ->
           let rng = Sim.Prng.create ~seed:5 in
           for _ = 1 to 20_000 do
             let cp = Ccr.Coloring.malloc col ctx (64 + (16 * Sim.Prng.int rng 28)) in
             Ccr.Coloring.store col ctx cp 7L;
             Ccr.Coloring.free col ctx cp
           done;
           out :=
             ( Ccr.Coloring.quarantine_frees col,
               Revoker.revocation_count (Option.get rt.Runtime.revoker) );
           Ccr.Mrs.finish mrs ctx));
    Sim.Machine.run rt.Runtime.machine;
    !out
  in
  let tbl =
    Table.create ~header:[ "colors"; "quarantine frees / 20000"; "revocations" ]
  in
  List.iter
    (fun k ->
      let q, revs = run k in
      Table.add_row tbl [ string_of_int k; string_of_int q; string_of_int revs ])
    [ 2; 4; 16 ];
  Table.render fmt tbl
