(* Reference values transcribed from the paper (Filardo et al., ASPLOS
   2024), for side-by-side comparison in the harness output. "-" means the
   paper reports the value only graphically. *)

(* Figure 1: wall-clock overhead vs the spatially-safe baseline, %.
   The paper quotes exact numbers only for its two worst cases. *)
let fig1_wall_overhead_pct = function
  | "xalancbmk", "reloaded" -> Some 29.4
  | "xalancbmk", "cornucopia" -> Some 29.7
  | "omnetpp", "reloaded" -> Some 23.1
  | "omnetpp", "cornucopia" -> Some 24.8
  | _ -> None

(* Figure 4: Reloaded's DRAM traffic as a fraction of Cornucopia's. *)
let fig4_reloaded_vs_cornucopia = function
  | "omnetpp" -> Some (45.0 /. 50.0)
  | "xalancbmk" -> Some (60.0 /. 68.0)
  | _ -> None

let fig4_median_ratio = 0.87

(* Figure 7 (pgbench): how much slower the 99th percentile transaction is
   than the median, in ms on Morello, and the median world-stopped times. *)
let fig7_p99_minus_median_ms = function
  | "cherivoke" -> Some 27.0
  | "cornucopia" -> Some 10.0
  | "reloaded" -> Some 5.4
  | _ -> None

let fig7_median_stw_ms = function
  | "cherivoke" -> Some 20.0
  | "cornucopia" -> Some 6.2
  | "reloaded" -> Some 0.00086 (* 860 us of cumulative fault handling *)
  | _ -> None

(* Figure 8 (gRPC QPS): throughput reduction and latency multipliers. *)
let fig8_qps_drop_pct = function
  | "reloaded" -> Some 12.82
  | "cornucopia" -> Some 12.88
  | _ -> None

let fig8_latency_ratio = function
  | "reloaded", 99.0 -> Some 2.0
  | "cornucopia", 99.0 -> Some 3.5
  | "reloaded", 99.9 -> Some 9.6
  | "cornucopia", 99.9 -> Some 9.9
  | _ -> None

(* Table 1: pgbench latency percentiles (ms) under fixed-rate schedules.
   Rates are in transactions/second on Morello (max ~284/s). *)
let table1 =
  [
    (100.0, [ 3.15; 5.14; 6.28; 12.8; 32.4 ]);
    (150.0, [ 3.12; 5.12; 6.35; 12.5; 43.9 ]);
    (250.0, [ 3.06; 4.13; 5.49; 8.72; 68.6 ]);
  ]

let table1_unscheduled = [ 3.15; 4.22; 5.59; 8.55; 69.6 ]
let table1_percentiles = [ 50.0; 90.0; 95.0; 99.0; 99.9 ]
let table1_max_rate = 284.0

(* Table 2: revocation rate statistics under Reloaded (unscaled). *)
type tab2_row = {
  t2_name : string;
  t2_mean_alloc_mib : float;
  t2_sum_freed_gib : float;
  t2_fa : float;
  t2_revocations : float;
  t2_rev_per_sec : float;
}

let table2 =
  [
    { t2_name = "xalancbmk"; t2_mean_alloc_mib = 625.0; t2_sum_freed_gib = 66.9;
      t2_fa = 110.0; t2_revocations = 426.0; t2_rev_per_sec = 0.572 };
    { t2_name = "astar_lakes"; t2_mean_alloc_mib = 235.0; t2_sum_freed_gib = 3.36;
      t2_fa = 14.7; t2_revocations = 39.0; t2_rev_per_sec = 0.150 };
    { t2_name = "omnetpp"; t2_mean_alloc_mib = 365.0; t2_sum_freed_gib = 73.8;
      t2_fa = 207.0; t2_revocations = 827.0; t2_rev_per_sec = 0.880 };
    { t2_name = "hmmer_nph3"; t2_mean_alloc_mib = 49.3; t2_sum_freed_gib = 2.06;
      t2_fa = 42.8; t2_revocations = 168.0; t2_rev_per_sec = 1.45 };
    { t2_name = "hmmer_retro"; t2_mean_alloc_mib = 20.4; t2_sum_freed_gib = 0.579;
      t2_fa = 29.0; t2_revocations = 117.0; t2_rev_per_sec = 0.481 };
    { t2_name = "gobmk_trevord"; t2_mean_alloc_mib = 124.0; t2_sum_freed_gib = 0.212;
      t2_fa = 1.75; t2_revocations = 7.0; t2_rev_per_sec = 0.0623 };
    { t2_name = "pgbench"; t2_mean_alloc_mib = 23.0; t2_sum_freed_gib = 55.1;
      t2_fa = 2534.0; t2_revocations = 10072.0; t2_rev_per_sec = 14.8 };
    { t2_name = "grpc_qps"; t2_mean_alloc_mib = 340.0; t2_sum_freed_gib = 4.65;
      t2_fa = 14.0; t2_revocations = 54.0; t2_rev_per_sec = 1.54 };
  ]

let heap_scale = 64.0 (* all byte quantities in the harness are 1/64 scale *)
