(* Bechamel microbenchmarks of the core primitives: how fast the
   simulator itself executes the operations every figure is built from.
   These measure HOST-side nanoseconds (OCaml execution), not simulated
   cycles — useful for keeping the harness usable at scale. *)

open Bechamel
open Toolkit

module M = Sim.Machine
module Cap = Cheri.Capability

(* A persistent rig reused across samples. The context is captured from a
   finished thread and reused with an unbounded quantum, so no operation
   ever needs to yield: every benchmarked primitive is non-blocking. *)
let rig =
  lazy
    (let config =
       {
         M.default_config with
         heap_bytes = 8 lsl 20;
         mem_bytes = 32 lsl 20;
         quantum = max_int;
       }
     in
     let m = M.create config in
     let alloc = Alloc.Allocator.create m in
     let rm = Ccr.Revmap.create m in
     let holder = ref None in
     ignore
       (M.spawn m ~name:"bench" ~core:3 (fun ctx ->
            let c = Alloc.Allocator.malloc alloc ctx 4096 in
            (* plant a capability so the page sweep has work *)
            M.store_cap ctx (Cap.set_addr c (Cap.base c)) c;
            holder := Some (ctx, c)));
     M.run m;
     let ctx, c = Option.get !holder in
     (m, alloc, rm, ctx, c))

let test_cap_derive =
  Test.make ~name:"capability set_bounds+perms"
    (Staged.stage (fun () ->
         let root = Cap.root ~length:(1 lsl 32) in
         let c = Cap.set_bounds root ~base:65536 ~length:256 in
         ignore (Cap.restrict_perms c Cheri.Perms.read_write)))

let test_compress =
  Test.make ~name:"compress representable"
    (Staged.stage (fun () -> ignore (Cheri.Compress.representable ~base:123456 ~length:1234567)))

let test_mem_cap_roundtrip =
  let mem = Tagmem.Mem.create ~size:(1 lsl 16) in
  let c = Cap.set_bounds (Cap.root ~length:(1 lsl 16)) ~base:256 ~length:64 in
  Test.make ~name:"tagged memory cap store+load"
    (Staged.stage (fun () ->
         Tagmem.Mem.write_cap mem 512 c;
         ignore (Tagmem.Mem.read_cap mem 512)))

let test_cache_access =
  let cache = Tagmem.Cache.create () in
  let i = ref 0 in
  Test.make ~name:"cache access (mixed)"
    (Staged.stage (fun () ->
         incr i;
         ignore (Tagmem.Cache.access cache ~addr:(!i * 48 land 0xfffff) ~write:(!i land 3 = 0))))

let test_sim_load =
  let _, _, _, ctx, c = Lazy.force rig in
  Test.make ~name:"simulated load_u64"
    (Staged.stage (fun () -> ignore (M.load_u64 ctx c)))

let test_sim_malloc_free =
  let _, alloc, _, ctx, _ = Lazy.force rig in
  Test.make ~name:"simulated malloc+free"
    (Staged.stage (fun () ->
         let c = Alloc.Allocator.malloc alloc ctx 128 in
         Alloc.Allocator.free alloc ctx c))

let test_revmap_paint =
  let _, _, rm, ctx, c = Lazy.force rig in
  Test.make ~name:"revmap paint+clear 256B"
    (Staged.stage (fun () ->
         Ccr.Revmap.paint rm ctx ~addr:(Cap.base c) ~size:256;
         Ccr.Revmap.clear rm ctx ~addr:(Cap.base c) ~size:256))

let test_sweep_page =
  let m, _, rm, ctx, c = Lazy.force rig in
  let pte =
    match Vm.Aspace.translate (M.aspace m) (Cap.base c) with
    | Some (_, pte) -> pte
    | None -> assert false
  in
  Test.make ~name:"sweep one 4KiB page"
    (Staged.stage (fun () -> ignore (Ccr.Sweep.sweep_page ctx rm ~pte)))

let benchmarks =
  [
    test_cap_derive;
    test_compress;
    test_mem_cap_roundtrip;
    test_cache_access;
    test_sim_load;
    test_sim_malloc_free;
    test_revmap_paint;
    test_sweep_page;
  ]

let run () =
  Format.printf "@.=== Microbenchmarks (host-side cost of simulator primitives) ===@.@.";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.one (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Instance.monotonic_clock raw with
          | exception _ -> Format.printf "  %-34s (analysis failed)@." name
          | ols -> (
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Format.printf "  %-34s %10.1f ns/op@." name est
              | _ -> Format.printf "  %-34s (no estimate)@." name))
        results)
    benchmarks
