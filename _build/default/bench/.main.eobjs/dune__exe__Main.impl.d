bench/main.ml: Array Campaign Figures Format List Micro Paper Printf Sys Unix
