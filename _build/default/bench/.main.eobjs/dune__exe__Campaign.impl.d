bench/campaign.ml: Array Ccr Format Hashtbl List Stats String Workload
