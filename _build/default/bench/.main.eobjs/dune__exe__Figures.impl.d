bench/figures.ml: Alloc Array Campaign Ccr Cheri Format List Option Paper Printf Sim Stats String Workload
