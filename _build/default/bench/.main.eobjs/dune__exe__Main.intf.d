bench/main.mli:
