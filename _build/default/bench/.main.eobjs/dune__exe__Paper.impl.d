bench/paper.ml:
