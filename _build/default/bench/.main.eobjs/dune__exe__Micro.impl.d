bench/micro.ml: Alloc Analyze Bechamel Benchmark Ccr Cheri Format Hashtbl Instance Lazy List Measure Option Sim Staged Tagmem Test Time Toolkit Vm
