(* Shared measurement campaigns: each (workload x mode) simulation runs
   once per harness invocation and its Result feeds every figure that
   needs it. *)

module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Result = Workload.Result
module Profile = Workload.Profile

let modes =
  [
    Runtime.Baseline;
    Runtime.Safe Revoker.Paint_sync;
    Runtime.Safe Revoker.Cherivoke;
    Runtime.Safe Revoker.Cornucopia;
    Runtime.Safe Revoker.Reloaded;
  ]

let safe_modes = List.tl modes
let mode_names = List.map Runtime.mode_name modes

type t = {
  scale : float;
  seed : int;
  jobs : int; (* domain-parallel fan-out width for independent cells *)
  interp : Workload.Spec.interp; (* spec cells only; simulated results identical *)
  spec : (string * string, Result.t) Hashtbl.t; (* (workload, mode) *)
  interactive : (string * string, Result.t) Hashtbl.t;
  durations : (string * string, float) Hashtbl.t; (* wall ms per cell *)
  mutable spec_done : bool;
  mutable pgbench_done : bool;
  mutable grpc_done : bool;
}

let create ?jobs ?(interp = Workload.Spec.Compiled) ~scale ~seed () =
  {
    scale;
    seed;
    jobs = (match jobs with Some j -> max 1 j | None -> Parallel.Pool.default_jobs ());
    interp;
    spec = Hashtbl.create 64;
    interactive = Hashtbl.create 16;
    durations = Hashtbl.create 64;
    spec_done = false;
    pgbench_done = false;
    grpc_done = false;
  }

let jobs t = t.jobs
let progress fmt = Format.eprintf fmt

(* Fan a list of independent (key, run) cells across domains. Workers
   are silent; results and their wall-clock durations are stored (and
   progress printed) from the calling domain in submission order, so
   every table is filled identically for any [t.jobs]. *)
let run_cells t table cells =
  let timed =
    Parallel.Pool.map ~jobs:t.jobs
      (fun (_key, run) ->
        let t0 = Unix.gettimeofday () in
        let r = run () in
        (r, (Unix.gettimeofday () -. t0) *. 1000.0))
      cells
  in
  List.iter2
    (fun (key, _) (r, ms) ->
      Hashtbl.replace table key r;
      Hashtbl.replace t.durations key ms)
    cells timed

let ensure_spec t =
  if not t.spec_done then begin
    let cells =
      List.concat_map
        (fun (p : Profile.t) ->
          List.map
            (fun mode ->
              ( (p.Profile.name, Runtime.mode_name mode),
                fun () ->
                  Workload.Spec.run ~seed:t.seed ~ops_scale:t.scale
                    ~interp:t.interp ~mode p ))
            modes)
        Profile.spec_all
    in
    progress "  [spec] %d cells (%d profiles x %d modes), %d jobs@."
      (List.length cells) (List.length Profile.spec_all) (List.length modes)
      t.jobs;
    run_cells t t.spec cells;
    t.spec_done <- true
  end

let ensure_pgbench t =
  if not t.pgbench_done then begin
    let config =
      {
        Workload.Pgbench.default_config with
        Workload.Pgbench.transactions =
          int_of_float (6000.0 *. t.scale) |> max 1500;
        seed = t.seed;
      }
    in
    progress "  [pgbench] %d modes, %d jobs@." (List.length modes) t.jobs;
    run_cells t t.interactive
      (List.map
         (fun mode ->
           ( ("pgbench", Runtime.mode_name mode),
             fun () -> Workload.Pgbench.run ~config ~mode () ))
         modes);
    t.pgbench_done <- true
  end

let ensure_grpc t =
  if not t.grpc_done then begin
    let config =
      {
        Workload.Grpc.default_config with
        Workload.Grpc.messages = int_of_float (24000.0 *. t.scale) |> max 6000;
        seed = t.seed;
      }
    in
    progress "  [grpc] %d modes, %d jobs@." (List.length modes) t.jobs;
    run_cells t t.interactive
      (List.map
         (fun mode ->
           ( ("grpc_qps", Runtime.mode_name mode),
             fun () -> Workload.Grpc.run ~config ~mode () ))
         modes);
    t.grpc_done <- true
  end

let spec t ~workload ~mode =
  ensure_spec t;
  Hashtbl.find t.spec (workload, mode)

let interactive t ~workload ~mode =
  (match workload with
  | "pgbench" -> ensure_pgbench t
  | "grpc_qps" -> ensure_grpc t
  | _ -> invalid_arg "Campaign.interactive");
  Hashtbl.find t.interactive (workload, mode)

let spec_names = List.map (fun p -> p.Profile.name) Profile.spec_all
let revoking_names = List.map (fun p -> p.Profile.name) Profile.spec_revoking

let overhead_pct ~test ~base =
  (float_of_int test /. float_of_int base -. 1.0) *. 100.0

let ratio ~test ~base = float_of_int test /. float_of_int base

(* latency percentile helper *)
let pct (r : Result.t) q =
  Stats.Summary.percentile (Array.to_list r.Result.latencies_us) q

(* One flat record per (profile x mode) spec run, for machine-readable
   output: overheads are against the same profile's Baseline run, and
   the pause tail is the p99 of per-epoch world-stopped durations. Every
   record carries the PRNG seed and the fault-schedule id so a dashboard
   row is reproducible from the record alone; the benchmark harness
   never arms a chaos schedule, so its schedule id is 0 (the field
   aligns these records with ccr_chaos output, where it is nonzero). *)
type json_record = {
  j_strategy : string;
  j_profile : string;
  j_topology : string; (* "single" here; "flat/N" in ccr_fleet records *)
  j_host_count : int;
  j_balancer : string; (* "none" here; a balancer name in fleet records *)
  j_tenants : int; (* 1 here; tenant count in ccr_sim tenantecon records *)
  j_overcommit : string; (* "none" here; a ledger policy name there *)
  j_seed : int;
  j_schedule : int; (* fault-schedule id; 0 = no faults armed *)
  j_cycles : int;
  j_overhead_pct : float;
  j_pause_p99 : float;
  j_abandoned_bytes : int; (* quarantine dropped unrevoked at finish *)
  j_lat_p99 : float; (* request-latency tail, µs; 0 for batch records *)
  j_lat_p999 : float;
  j_duration_ms : float; (* host wall-clock of the cell's simulation *)
  j_jobs : int; (* fan-out width the campaign ran with *)
  j_ops_per_sec : float;
      (* host-side interpreter throughput: simulated ops per host
         second. Like duration_ms/jobs this is a property of the run,
         not of the simulated machine — CI normalizes it away when
         diffing compiled vs reference output *)
}

(* Tail of a latency-bearing record through the log-bucketed histogram —
   the same recorder a production fleet would use — rather than the
   exact sorted-array percentile, so dashboard rows match what a
   constant-memory collector on real hardware reports. Batch records
   have no samples and report 0. *)
let hist_tail (r : Result.t) q =
  if Array.length r.Result.latencies_us = 0 then 0.0
  else begin
    let h = Stats.Histogram.create () in
    Array.iter (Stats.Histogram.record h) r.Result.latencies_us;
    Stats.Histogram.percentile h q
  end

let record_of t ~workload ~mode ~base ~seed (r : Result.t) =
  let pauses =
    List.map (fun p -> float_of_int p.Revoker.stw_cycles) r.Result.phases
  in
  {
    j_strategy = mode;
    j_profile = workload;
    (* the harness simulates one machine per cell; the fields exist so
       these records stay schema-aligned with ccr_fleet's multi-host ones *)
    j_topology = "single";
    j_host_count = 1;
    j_balancer = "none";
    j_tenants = 1;
    j_overcommit = "none";
    j_seed = seed;
    j_schedule = 0;
    j_cycles = r.Result.wall_cycles;
    j_overhead_pct = overhead_pct ~test:r.Result.wall_cycles ~base;
    j_pause_p99 =
      (if pauses = [] then 0.0 else Stats.Summary.percentile pauses 99.0);
    j_abandoned_bytes =
      (match r.Result.mrs with
      | Some s -> s.Ccr.Mrs.abandoned_bytes
      | None -> 0);
    j_lat_p99 = hist_tail r 99.0;
    j_lat_p999 = hist_tail r 99.9;
    j_duration_ms =
      (try Hashtbl.find t.durations (workload, mode) with Not_found -> 0.0);
    j_jobs = t.jobs;
    j_ops_per_sec =
      (let ms =
         try Hashtbl.find t.durations (workload, mode) with Not_found -> 0.0
       in
       if ms > 0.0 && r.Result.ops_done > 0 then
         float_of_int r.Result.ops_done /. (ms /. 1000.0)
       else 0.0);
  }

let json_records t =
  ensure_spec t;
  ensure_pgbench t;
  ensure_grpc t;
  let specs =
    List.concat_map
      (fun workload ->
        let base =
          (Hashtbl.find t.spec (workload, "baseline")).Result.wall_cycles
        in
        List.map
          (fun mode ->
            record_of t ~workload ~mode ~base ~seed:t.seed
              (Hashtbl.find t.spec (workload, mode)))
          mode_names)
      spec_names
  in
  let interactive =
    List.concat_map
      (fun workload ->
        let base =
          (Hashtbl.find t.interactive (workload, "baseline")).Result.wall_cycles
        in
        List.map
          (fun mode ->
            record_of t ~workload ~mode ~base ~seed:t.seed
              (Hashtbl.find t.interactive (workload, mode)))
          mode_names)
      [ "pgbench"; "grpc_qps" ]
  in
  specs @ interactive

(* median over per-epoch phase records *)
let phase_median records f =
  match records with
  | [] -> 0.0
  | rs -> Stats.Summary.percentile (List.map (fun r -> float_of_int (f r)) rs) 50.0
