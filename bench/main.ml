(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5) plus the DESIGN.md ablations.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- --scale 1.0 fig1 fig4
     dune exec bench/main.exe -- --list

   Figures are computed from a shared measurement campaign: each
   (workload x mode) pair simulates once per invocation. *)

let all_targets : (string * string * (Campaign.t -> unit)) list =
  [
    ("fig1", "SPEC wall-clock overheads", Figures.fig1);
    ("fig2", "SPEC CPU-time overheads", Figures.fig2);
    ("fig3", "SPEC peak-RSS ratios", Figures.fig3);
    ("fig4", "SPEC bus-traffic overheads", Figures.fig4);
    ("fig5", "pgbench time overheads", Figures.fig5);
    ("fig6", "pgbench bus overheads", Figures.fig6);
    ("fig7", "pgbench latency CDF", Figures.fig7);
    ("fig8", "gRPC QPS latency percentiles", Figures.fig8);
    ("fig9", "revocation phase times", Figures.fig9);
    ("tab1", "pgbench fixed-rate latencies", Figures.tab1);
    ("tab2", "revocation rate statistics", Figures.tab2);
    ("ablation_policy", "quarantine policy sweep (§7.2)", Figures.ablation_policy);
    ("ablation_nt", "non-temporal sweep loads (§5.6)", Figures.ablation_nt);
    ("ablation_cheriot", "load filter vs load barrier (§6.3)", Figures.ablation_cheriot);
    ("ablation_clg", "per-PTE flag vs generation bit (§4.1)", Figures.ablation_clg);
    ("ablation_multibg", "multi-threaded background sweep (§7.1)", Figures.ablation_multibg);
    ("ablation_allocator", "snmalloc vs jemalloc (footnote 23)", Figures.ablation_allocator);
    ("ablation_coloring", "memory-coloring composition (§7.3)", Figures.ablation_coloring);
    ("micro", "bechamel microbenchmarks of primitives", fun _ -> Micro.run ());
  ]

(* Machine-readable output: one flat JSON record per (profile x mode)
   run — SPEC batch profiles plus the interactive pgbench/grpc pair,
   whose records carry latency tails — for dashboards and CI trend
   tracking. *)
let write_json path records =
  let oc = open_out path in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (r : Campaign.json_record) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"strategy\": %S, \"profile\": %S, \"topology\": %S, \
            \"host_count\": %d, \"balancer\": %S, \"tenants\": %d, \
            \"overcommit\": %S, \"seed\": %d, \
            \"fault_schedule\": %d, \"cycles\": %d, \"overhead_pct\": %.4f, \
            \"pause_p99\": %.1f, \"abandoned_bytes\": %d, \"lat_p99_us\": \
            %.3f, \"lat_p999_us\": %.3f, \"duration_ms\": %.3f, \"jobs\": %d, \
            \"ops_per_sec\": %.1f}"
           r.Campaign.j_strategy r.Campaign.j_profile r.Campaign.j_topology
           r.Campaign.j_host_count r.Campaign.j_balancer r.Campaign.j_tenants
           r.Campaign.j_overcommit r.Campaign.j_seed
           r.Campaign.j_schedule r.Campaign.j_cycles
           r.Campaign.j_overhead_pct r.Campaign.j_pause_p99
           r.Campaign.j_abandoned_bytes r.Campaign.j_lat_p99
           r.Campaign.j_lat_p999 r.Campaign.j_duration_ms r.Campaign.j_jobs
           r.Campaign.j_ops_per_sec))
    records;
  Buffer.add_string buf "\n]\n";
  Buffer.output_buffer oc buf;
  close_out oc

let usage () =
  print_endline
    "usage: main.exe [--scale S] [--seed N] [--jobs N] [--interp \
     compiled|reference] [--json OUT] [--list] [target ...]";
  print_endline "targets:";
  List.iter (fun (n, d, _) -> Printf.printf "  %-18s %s\n" n d) all_targets;
  print_endline "(no targets = run everything)"

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "main.exe: %s\n" msg;
      usage ();
      exit 1)
    fmt

let () =
  let scale = ref 0.5 in
  let seed = ref 1 in
  let jobs = ref (Parallel.Pool.default_jobs ()) in
  let interp = ref Workload.Spec.Compiled in
  let json_out = ref None in
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some s when s > 0.0 -> scale := s
        | Some _ | None -> die "--scale needs a positive number, got %S" v);
        parse rest
    | "--seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s -> seed := s
        | None -> die "--seed needs an integer, got %S" v);
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | None -> die "--jobs needs a positive integer, got %S" v
        | Some j -> (
            match Parallel.Pool.validate_jobs j with
            | Ok j -> jobs := j
            | Error msg -> die "%s" msg));
        parse rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse rest
    | "--interp" :: v :: rest ->
        (match v with
        | "compiled" -> interp := Workload.Spec.Compiled
        | "reference" -> interp := Workload.Spec.Reference
        | _ -> die "--interp takes 'compiled' or 'reference', got %S" v);
        parse rest
    | [ ("--scale" | "--seed" | "--jobs" | "--json" | "--interp") ] as flag ->
        die "%s needs a value" (List.hd flag)
    | ("--list" | "--help" | "-h") :: _ ->
        usage ();
        exit 0
    | t :: rest ->
        if List.exists (fun (n, _, _) -> n = t) all_targets then begin
          targets := t :: !targets;
          parse rest
        end
        else if String.length t > 0 && t.[0] = '-' then
          die "unknown option %S" t
        else
          die "unknown target %S" t
  in
  parse (List.tl (Array.to_list Sys.argv));
  let chosen =
    match List.rev !targets with
    | [] ->
        (* --json with no targets dumps the spec campaign without
           rendering every figure *)
        if !json_out <> None then []
        else List.map (fun (n, _, _) -> n) all_targets
    | l -> l
  in
  Format.printf
    "Cornucopia Reloaded reproduction harness — ops scale %.2f, heap scale 1/%.0f, seed %d, jobs %d@."
    !scale Paper.heap_scale !seed !jobs;
  Format.printf
    "(shapes and orderings are the reproduced quantities; see EXPERIMENTS.md)@.";
  let c = Campaign.create ~jobs:!jobs ~interp:!interp ~scale:!scale ~seed:!seed () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      let _, _, f = List.find (fun (n, _, _) -> n = name) all_targets in
      f c)
    chosen;
  (match !json_out with
  | Some path ->
      write_json path (Campaign.json_records c);
      Format.printf "wrote %s@." path
  | None -> ());
  Format.printf "@.[harness completed in %.1fs]@." (Unix.gettimeofday () -. t0)
